// Package trace exports executed simulation timelines for inspection:
// Chrome trace-event JSON (load in chrome://tracing or Perfetto) and a
// compact ASCII Gantt view for terminals. Both operate on any executed
// des.Graph, so collective schedules and whole training pipelines share one
// export path.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ccube/internal/des"
)

// chromeEvent is one complete ("X" phase) trace event in the Chrome
// trace-event format. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// chromeMeta names a lane (thread) in the viewer.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeInstant is a zero-duration ("i" phase) event, drawn as a tick on
// its lane. Scope "t" confines the tick to the thread row.
type chromeInstant struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s"`
}

// Chrome writes the executed graph as Chrome trace-event JSON. Each
// des.Resource becomes a lane holding its tasks. Zero-duration bookkeeping
// tasks (markers, joins) are emitted as instant events — on their
// resource's lane when they have one, otherwise on a shared "markers" lane
// — so synchronization points stay visible in the viewer. The graph must
// have run.
func Chrome(w io.Writer, g *des.Graph) error {
	if !g.Ran() {
		return fmt.Errorf("trace: graph has not run")
	}
	lanes := make(map[*des.Resource]int)
	var laneNames []string
	var events []any
	laneOf := func(res *des.Resource, name string) int {
		tid, ok := lanes[res]
		if !ok {
			tid = len(laneNames)
			lanes[res] = tid
			laneNames = append(laneNames, name)
		}
		return tid
	}

	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(i)
		if t.End == t.Start {
			tid := 0
			if t.Resource != nil {
				tid = laneOf(t.Resource, t.Resource.Name)
			} else {
				tid = laneOf(nil, "markers")
			}
			events = append(events, chromeInstant{
				Name: t.Label,
				Ph:   "i",
				Ts:   t.Start.Micros(),
				Pid:  0,
				Tid:  tid,
				S:    "t",
			})
			continue
		}
		if t.Resource == nil {
			continue
		}
		events = append(events, chromeEvent{
			Name: t.Label,
			Ph:   "X",
			Ts:   t.Start.Micros(),
			Dur:  (t.End - t.Start).Micros(),
			Pid:  0,
			Tid:  laneOf(t.Resource, t.Resource.Name),
		})
	}
	for tid, name := range laneNames {
		events = append(events, chromeMeta{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  tid,
			Args: map[string]string{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// GanttOptions controls the ASCII rendering.
type GanttOptions struct {
	Width    int // characters for the time axis (default 80)
	MaxLanes int // busiest lanes shown (0 = all)
}

// Gantt renders the executed graph's resource occupancy as text: one line
// per resource, '#' where the resource is busy, ordered by busy time. When
// MaxLanes truncates the view, a "(+N more lanes)" footer says how many
// lanes were cut.
func Gantt(g *des.Graph, opts GanttOptions) string {
	if opts.Width <= 0 {
		opts.Width = 80
	}
	type lane struct {
		res   *des.Resource
		tasks []*des.Task
		busy  des.Time
	}
	byRes := make(map[*des.Resource]*lane)
	var horizon des.Time
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(i)
		if t.End > horizon {
			horizon = t.End
		}
		if t.Resource == nil || t.End == t.Start {
			continue
		}
		l, ok := byRes[t.Resource]
		if !ok {
			l = &lane{res: t.Resource}
			byRes[t.Resource] = l
		}
		l.tasks = append(l.tasks, t)
		l.busy += t.End - t.Start
	}
	if horizon == 0 || len(byRes) == 0 {
		return "(empty timeline)\n"
	}
	lanes := make([]*lane, 0, len(byRes))
	for _, l := range byRes {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(a, b int) bool {
		if lanes[a].busy != lanes[b].busy {
			return lanes[a].busy > lanes[b].busy
		}
		return lanes[a].res.Name < lanes[b].res.Name
	})
	hidden := 0
	if opts.MaxLanes > 0 && len(lanes) > opts.MaxLanes {
		hidden = len(lanes) - opts.MaxLanes
		lanes = lanes[:opts.MaxLanes]
	}

	nameW := 0
	for _, l := range lanes {
		if len(l.res.Name) > nameW {
			nameW = len(l.res.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s |%s| 0 .. %v\n", nameW, "lane", strings.Repeat("-", opts.Width), horizon)
	cell := float64(horizon) / float64(opts.Width)
	for _, l := range lanes {
		row := make([]byte, opts.Width)
		for i := range row {
			row[i] = ' '
		}
		for _, t := range l.tasks {
			lo := int(float64(t.Start) / cell)
			hi := int(float64(t.End) / cell)
			if hi >= opts.Width {
				hi = opts.Width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s |%s| %.1f%%\n", nameW, l.res.Name, row,
			100*float64(l.busy)/float64(horizon))
	}
	if hidden > 0 {
		fmt.Fprintf(&b, "(+%d more lanes)\n", hidden)
	}
	return b.String()
}
