package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically: families sorted by name,
// labeled children by label value. Safe to call concurrently with updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				f.mu.Unlock()
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			f.mu.Unlock()
			return err
		}
		var err error
		if f.label == "" {
			err = writeInstrument(w, f.name, "", f.scalar)
		} else {
			values := make([]string, 0, len(f.children))
			for v := range f.children {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, v := range values {
				lbl := fmt.Sprintf(`{%s=%q}`, f.label, escapeLabel(v))
				if err = writeInstrument(w, f.name, lbl, f.children[v]); err != nil {
					break
				}
			}
		}
		f.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func writeInstrument(w io.Writer, name, labels string, inst any) error {
	switch v := inst.(type) {
	case nil:
		return nil
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(v.Value()))
		return err
	case *Histogram:
		cum := int64(0)
		for i := range v.counts {
			cum += v.counts[i].Load()
			le := "+Inf"
			if i < len(v.bounds) {
				le = formatFloat(v.bounds[i])
			}
			bucketLabels := fmt.Sprintf(`{le=%q}`, le)
			if labels != "" {
				bucketLabels = strings.TrimSuffix(labels, "}") + fmt.Sprintf(`,le=%q}`, le)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, v.Count())
		return err
	default:
		return fmt.Errorf("metrics: unknown instrument %T for %s", inst, name)
	}
}

// formatFloat renders floats the way Prometheus expects: shortest
// round-trippable form, integers without a trailing ".0".
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q in the callers already escapes quotes and backslashes; nothing
	// further needed, but keep newlines out of label values defensively.
	return strings.ReplaceAll(s, "\n", " ")
}

// ValueSnapshot is one instrument's state in a JSON snapshot. Counter and
// gauge values land in Value; histograms use Count/Sum/Buckets.
type ValueSnapshot struct {
	Label   string   `json:"label,omitempty"`
	Value   float64  `json:"value"`
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket; Le is the inclusive upper
// bound (+Inf for the overflow bucket).
type Bucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// FamilySnapshot is one metric family in a JSON snapshot.
type FamilySnapshot struct {
	Name   string          `json:"name"`
	Kind   string          `json:"kind"`
	Help   string          `json:"help,omitempty"`
	Label  string          `json:"label,omitempty"`
	Values []ValueSnapshot `json:"values"`
}

// Snapshot returns a deterministic point-in-time copy of every registered
// family, suitable for embedding in reports (BENCH_ccube.json).
func (r *Registry) Snapshot() []FamilySnapshot {
	families := r.sortedFamilies()
	out := make([]FamilySnapshot, 0, len(families))
	for _, f := range families {
		fs := FamilySnapshot{Name: f.name, Kind: f.kind.String(), Help: f.help, Label: f.label}
		f.mu.Lock()
		if f.label == "" {
			if v := snapshotInstrument("", f.scalar); v != nil {
				fs.Values = append(fs.Values, *v)
			}
		} else {
			values := make([]string, 0, len(f.children))
			for v := range f.children {
				values = append(values, v)
			}
			sort.Strings(values)
			for _, lv := range values {
				if v := snapshotInstrument(lv, f.children[lv]); v != nil {
					fs.Values = append(fs.Values, *v)
				}
			}
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

func snapshotInstrument(label string, inst any) *ValueSnapshot {
	switch v := inst.(type) {
	case *Counter:
		return &ValueSnapshot{Label: label, Value: float64(v.Value())}
	case *Gauge:
		return &ValueSnapshot{Label: label, Value: v.Value()}
	case *Histogram:
		vs := &ValueSnapshot{Label: label, Count: v.Count(), Sum: v.Sum()}
		cum := int64(0)
		for i := range v.counts {
			cum += v.counts[i].Load()
			le := "+Inf"
			if i < len(v.bounds) {
				le = formatFloat(v.bounds[i])
			}
			vs.Buckets = append(vs.Buckets, Bucket{Le: le, Count: cum})
		}
		return vs
	default:
		return nil
	}
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
