package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterDisabledIgnoresUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d, want 0", got)
	}
	r.Enable()
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up; negative deltas dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("enabled counter = %d, want 5", got)
	}
	r.Disable()
	c.Inc()
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after re-disable = %d, want 5 (kept, not grown)", got)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
}

func TestGaugeSetMaxAndAdd(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	g := r.Gauge("depth", "high-water mark")
	g.SetMax(3)
	g.SetMax(1)
	if got := g.Value(); got != 3 {
		t.Fatalf("SetMax high-water = %v, want 3", got)
	}
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("Set+Add = %v, want 0.75", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("Sum = %v, want 556.5", h.Sum())
	}
	// Bounds are inclusive upper bounds: 0.5 and 1 land in le=1; 5 in
	// le=10; 50 in le=100; 500 overflows to +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramRejectsNonAscendingBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending bounds")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{1, 1})
}

func TestLookupConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic re-registering counter as gauge")
		}
	}()
	r.Gauge("x", "")
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c", "") != r.Counter("c", "later help") {
		t.Fatal("Counter get-or-create returned distinct instruments")
	}
	v := r.CounterVec("cv", "", "ch")
	if v.With("a") != v.With("a") {
		t.Fatal("CounterVec.With returned distinct children for one label")
	}
	if v.With("a") == v.With("b") {
		t.Fatal("CounterVec.With shared a child across labels")
	}
}

func TestResetKeepsHandlesValid(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1})
	cv := r.CounterVec("cv", "", "k")
	cv.With("x").Inc()
	c.Add(7)
	g.Set(2)
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset did not zero instruments")
	}
	if cv.With("x").Value() != 0 {
		t.Fatal("Reset did not drop vec children")
	}
	c.Inc() // the old handle must still feed the registry
	if c.Value() != 1 {
		t.Fatal("scalar handle dead after Reset")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "c 1\n") {
		t.Fatalf("post-Reset export missing revived counter:\n%s", buf.String())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	r.Counter("b_total", "bytes moved").Add(42)
	r.Gauge("util", "link \"utilization\"").Set(0.5)
	r.Histogram("wait_us", "dequeue wait", []float64{10, 100}).Observe(7)
	r.CounterVec("ch_bytes_total", "per-channel bytes", "channel").With(`ch0:a->b("x")`).Add(9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP b_total bytes moved\n# TYPE b_total counter\nb_total 42\n",
		"# TYPE util gauge\nutil 0.5\n",
		"# TYPE wait_us histogram\n",
		`wait_us_bucket{le="10"} 1`,
		`wait_us_bucket{le="100"} 1`,
		`wait_us_bucket{le="+Inf"} 1`,
		"wait_us_sum 7\n",
		"wait_us_count 1\n",
		`ch_bytes_total{channel="ch0:a->b(\"x\")"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Families must come out name-sorted for deterministic diffs.
	if strings.Index(out, "# TYPE b_total") > strings.Index(out, "# TYPE util") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	r.Counter("c_total", "").Add(3)
	r.GaugeVec("g", "", "mode").With("CC").Set(1.5)
	r.Histogram("h", "", []float64{1}).Observe(2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap []FamilySnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d families, want 3", len(snap))
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range snap {
		byName[f.Name] = f
	}
	if got := byName["c_total"].Values[0].Value; got != 3 {
		t.Errorf("c_total = %v, want 3", got)
	}
	gv := byName["g"]
	if gv.Label != "mode" || gv.Values[0].Label != "CC" || gv.Values[0].Value != 1.5 {
		t.Errorf("gauge vec snapshot wrong: %+v", gv)
	}
	hv := byName["h"].Values[0]
	if hv.Count != 1 || hv.Sum != 2 || len(hv.Buckets) != 2 || hv.Buckets[1].Le != "+Inf" {
		t.Errorf("histogram snapshot wrong: %+v", hv)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 10, 100})
	for _, enabled := range []bool{false, true} {
		if enabled {
			r.Enable()
		} else {
			r.Disable()
		}
		allocs := testing.AllocsPerRun(1000, func() {
			c.Inc()
			c.Add(3)
			g.Set(1)
			g.Add(0.5)
			g.SetMax(2)
			h.Observe(42)
		})
		if allocs != 0 {
			t.Errorf("enabled=%v: %v allocs/op on the hot path, want 0", enabled, allocs)
		}
	}
}

// TestConcurrentUpdates exists primarily for the race-enabled CI job: every
// mutation path runs from many goroutines against one registry, concurrent
// with exports.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2})
	cv := r.CounterVec("cv", "", "k")
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := cv.With("shared")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(float64(i))
				h.Observe(float64(i % 3))
				child.Inc()
			}
		}(w)
	}
	var wgExport sync.WaitGroup
	wgExport.Add(1)
	go func() {
		defer wgExport.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
			}
			r.Snapshot()
		}
	}()
	wg.Wait()
	wgExport.Wait()
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); math.Abs(got-workers*iters) > 0.5 {
		t.Fatalf("gauge accumulated %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := cv.With("shared").Value(); got != workers*iters {
		t.Fatalf("vec child = %d, want %d", got, workers*iters)
	}
}
