// Package metrics is the simulator's runtime observability layer: counter,
// gauge, and histogram primitives that every subsystem (des engine,
// collective execution, gradient queuing, fault handling, training pipeline)
// publishes into one process-wide registry, exportable as a Prometheus
// text-format snapshot or JSON.
//
// The design contract, pinned by internal/des's AllocsPerRun tests, is
// zero overhead on the hot path when collection is disabled:
//
//   - Instruments are registered once, at package init or setup time, and
//     preallocate all of their storage (histogram buckets included). The
//     hot-path operations (Inc, Add, Set, SetMax, Observe) never allocate —
//     enabled or not.
//   - Every hot-path operation first loads one atomic bool; when the owning
//     registry is disabled it returns immediately. Disabled cost is a load
//     and a predictable branch.
//   - All mutation is atomic (CAS loops for float accumulation), so
//     instruments are safe to update from parallel sweep workers and the
//     gpusim kernel goroutines under the race detector.
//
// Labeled families (CounterVec/GaugeVec) materialize one child per label
// value on first use; acquisition takes a lock and may allocate, so hot code
// acquires children during setup (or publishes post-run), never per event.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the instrument families a registry can hold.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Registry owns a set of named instrument families. The zero value is not
// usable; call NewRegistry. A registry starts disabled: instruments ignore
// updates until Enable is called, which is what keeps library code free to
// instrument unconditionally.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric: either a single scalar instrument or a set of
// labeled children (a "vec").
type family struct {
	name   string
	help   string
	kind   Kind
	label  string    // label key; "" for scalar families
	bounds []float64 // histogram bucket upper bounds

	mu       sync.Mutex
	scalar   any            // *Counter / *Gauge / *Histogram when label == ""
	children map[string]any // label value -> instrument when label != ""
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every package in this repository
// publishes into. Commands enable it with their -metrics flags.
var Default = NewRegistry()

// Enable turns collection on: instrument updates start taking effect.
func (r *Registry) Enable() { r.enabled.Store(true) }

// Disable turns collection off; already-recorded values are kept.
func (r *Registry) Disable() { r.enabled.Store(false) }

// Enabled reports whether collection is on. Callers computing expensive
// derived metrics (interval merging, per-channel aggregation) guard the whole
// computation on this.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// lookup returns the family with the given name, creating it on first use.
// Re-registering an existing name with a different kind or label key panics:
// two subsystems fighting over one name is a wiring bug.
func (r *Registry) lookup(name, help string, kind Kind, label string, bounds []float64) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, label: label, bounds: bounds}
		if label != "" {
			f.children = make(map[string]any)
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind || f.label != label {
		panic(fmt.Sprintf("metrics: %s re-registered as %v/%q (was %v/%q)",
			name, kind, label, f.kind, f.label))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

// Counter returns the counter with the given name, registering it on first
// use. Counters only go up.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, KindCounter, "", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.scalar == nil {
		f.scalar = &Counter{r: r}
	}
	return f.scalar.(*Counter)
}

// Gauge returns the gauge with the given name, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, KindGauge, "", nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.scalar == nil {
		f.scalar = &Gauge{r: r}
	}
	return f.scalar.(*Gauge)
}

// Histogram returns the histogram with the given name, registering it on
// first use with the given bucket upper bounds (ascending; an implicit +Inf
// bucket is appended). Bounds are fixed at registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s has non-ascending bucket bounds", name))
		}
	}
	f := r.lookup(name, help, KindHistogram, "", bounds)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.scalar == nil {
		f.scalar = newHistogram(r, f.bounds)
	}
	return f.scalar.(*Histogram)
}

// CounterVec returns a labeled counter family: one counter per label value,
// materialized by With.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if label == "" {
		panic(fmt.Sprintf("metrics: %s: empty label key", name))
	}
	return &CounterVec{f: r.lookup(name, help, KindCounter, label, nil), r: r}
}

// GaugeVec returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if label == "" {
		panic(fmt.Sprintf("metrics: %s: empty label key", name))
	}
	return &GaugeVec{f: r.lookup(name, help, KindGauge, label, nil), r: r}
}

// Reset zeroes every registered instrument and drops all vec children, while
// keeping the registrations (and any scalar instrument handles held by
// instrumented code) valid. Commands call it to scope a snapshot to one run.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		f.mu.Lock()
		switch v := f.scalar.(type) {
		case *Counter:
			v.v.Store(0)
		case *Gauge:
			v.bits.Store(0)
		case *Histogram:
			v.reset()
		}
		if f.children != nil {
			f.children = make(map[string]any)
		}
		f.mu.Unlock()
	}
}

// sortedFamilies returns the registered families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].name < out[b].name })
	return out
}

// Counter is a monotonically increasing count.
type Counter struct {
	r *Registry
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (must be >= 0; negative deltas are ignored — counters only go
// up). A nil counter is inert.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 || !c.r.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (readable even while disabled).
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	r    *Registry
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v exceeds the current value — a running
// maximum (ready-queue high-water marks).
func (g *Gauge) SetMax(v float64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add adds v to the gauge (atomic CAS accumulation).
func (g *Gauge) Add(v float64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Storage is allocated at
// registration; Observe never allocates.
type Histogram struct {
	r       *Registry
	bounds  []float64 // upper bounds, ascending; +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(r *Registry, bounds []float64) *Histogram {
	return &Histogram{
		r:      r,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.r.enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	f *family
	r *Registry
}

// With returns the child counter for the given label value, creating it on
// first use. Acquisition locks and may allocate; hot paths must hold the
// returned child, not call With per event.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	c, ok := v.f.children[value]
	if !ok {
		c = &Counter{r: v.r}
		v.f.children[value] = c
	}
	return c.(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	f *family
	r *Registry
}

// With returns the child gauge for the given label value (see
// CounterVec.With for the acquisition contract).
func (v *GaugeVec) With(value string) *Gauge {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	g, ok := v.f.children[value]
	if !ok {
		g = &Gauge{r: v.r}
		v.f.children[value] = g
	}
	return g.(*Gauge)
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at start
// and multiplying by factor: the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
