package des

import (
	"container/heap"
	"fmt"
)

// Task is a unit of work in a dependency graph. A task becomes ready when all
// of its dependencies have ended; it then occupies its Resource (if any) for
// Duration. Tasks without a Resource model pure delays (or instantaneous
// joins when Duration is zero).
type Task struct {
	ID       int
	Label    string
	Resource *Resource // nil for a delay/join task
	Duration Time

	// Filled in by Graph.Run.
	Ready Time // when all dependencies ended
	Start Time // when the resource was granted
	End   Time // Start + Duration (after resource slowdown)

	deps       int // remaining unfinished dependencies
	depsTotal  int
	dependents []int
	scheduled  bool
	done       bool
	earliest   Time // lower bound on readiness independent of deps
}

// Graph is a DAG of Tasks executed over serialized Resources. Build it once,
// then call Run; the computed Start/End times answer every timing question an
// experiment asks.
type Graph struct {
	tasks []*Task
	ran   bool
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph { return &Graph{} }

// NumTasks reports how many tasks have been added.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// Task returns the task with the given id.
func (g *Graph) Task(id int) *Task { return g.tasks[id] }

// Add appends a task occupying res for d, depending on the given task ids,
// and returns its id. A nil res models a pure delay.
func (g *Graph) Add(label string, res *Resource, d Time, deps ...int) int {
	if g.ran {
		panic("des: adding task to a graph that already ran")
	}
	if d < 0 {
		panic(fmt.Sprintf("des: task %q has negative duration %v", label, d))
	}
	id := len(g.tasks)
	t := &Task{ID: id, Label: label, Resource: res, Duration: d}
	g.tasks = append(g.tasks, t)
	g.AddDeps(id, deps...)
	return id
}

// AddDeps declares that task id depends on each task in deps. Dependencies
// must already exist and must precede id (the graph is built topologically).
func (g *Graph) AddDeps(id int, deps ...int) {
	t := g.tasks[id]
	for _, d := range deps {
		if d < 0 || d >= len(g.tasks) {
			panic(fmt.Sprintf("des: task %q depends on unknown task %d", t.Label, d))
		}
		if d == id {
			panic(fmt.Sprintf("des: task %q depends on itself", t.Label))
		}
		g.tasks[d].dependents = append(g.tasks[d].dependents, id)
		t.deps++
		t.depsTotal++
	}
}

// SetEarliest sets a lower bound on when the task may become ready,
// independent of its dependencies (e.g. an external arrival time).
func (g *Graph) SetEarliest(id int, t Time) {
	if g.ran {
		panic("des: mutating a graph that already ran")
	}
	g.tasks[id].earliest = t
}

// readyHeap orders tasks by (ready time, id) for deterministic FIFO grants.
type readyHeap []*Task

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].Ready != h[j].Ready {
		return h[i].Ready < h[j].Ready
	}
	return h[i].ID < h[j].ID
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// TaskFault identifies one task refused by its failed resource.
type TaskFault struct {
	TaskID   int
	Label    string
	Resource string
	At       Time // when the task would have started
	FailedAt Time // when the resource died
}

// FaultError reports that a run aborted because a resource refused a task
// (see Resource.FailAt). The run stops deterministically at the first
// refusal; Executed counts the tasks that completed before it.
type FaultError struct {
	Faults   []TaskFault
	Executed int
	Total    int
}

func (e *FaultError) Error() string {
	f := e.Faults[0]
	return fmt.Sprintf("des: task %d %q refused by failed resource %s (died at %v, would start at %v); %d of %d tasks executed",
		f.TaskID, f.Label, f.Resource, f.FailedAt, f.At, e.Executed, e.Total)
}

// Run executes the graph and returns the makespan (max task End). It panics
// if the graph contains a dependency cycle (tasks would remain unexecuted)
// or if a failed resource refuses a task — use RunErr when faults are
// expected. Run may be called once per graph.
func (g *Graph) Run() Time {
	m, err := g.RunErr()
	if err != nil {
		panic(err.Error())
	}
	return m
}

// RunErr executes the graph and returns the makespan (max task End). When a
// failed resource (Resource.FailAt) refuses a task, the run aborts at that
// point and returns the makespan so far together with a *FaultError naming
// the refused task; callers repair the schedule and retry on a fresh graph.
// Dependency cycles still panic — they are construction bugs, not faults.
// RunErr may be called once per graph.
func (g *Graph) RunErr() (Time, error) {
	if g.ran {
		panic("des: graph ran twice")
	}
	g.ran = true

	var ready readyHeap
	for _, t := range g.tasks {
		if t.deps == 0 {
			t.Ready = t.earliest
			t.scheduled = true
			heap.Push(&ready, t)
		}
	}

	var makespan Time
	executed := 0
	for ready.Len() > 0 {
		t := heap.Pop(&ready).(*Task)
		if t.Resource != nil {
			start, end, err := t.Resource.reserve(t.Ready, t.Duration, t.ID)
			if err != nil {
				ref := err.(*refusal)
				return makespan, &FaultError{
					Faults: []TaskFault{{
						TaskID:   t.ID,
						Label:    t.Label,
						Resource: ref.Resource,
						At:       ref.At,
						FailedAt: ref.FailedAt,
					}},
					Executed: executed,
					Total:    len(g.tasks),
				}
			}
			t.Start, t.End = start, end
		} else {
			t.Start = t.Ready
			t.End = t.Start + t.Duration
		}
		t.done = true
		executed++
		if t.End > makespan {
			makespan = t.End
		}
		for _, did := range t.dependents {
			d := g.tasks[did]
			if t.End > d.Ready {
				d.Ready = t.End
			}
			d.deps--
			if d.deps == 0 {
				if d.earliest > d.Ready {
					d.Ready = d.earliest
				}
				d.scheduled = true
				heap.Push(&ready, d)
			}
		}
	}
	if executed != len(g.tasks) {
		panic(fmt.Sprintf("des: dependency cycle: %d of %d tasks executed", executed, len(g.tasks)))
	}
	return makespan, nil
}

// Ran reports whether Run has executed.
func (g *Graph) Ran() bool { return g.ran }

// End returns the end time of task id (valid after Run).
func (g *Graph) End(id int) Time { return g.tasks[id].End }

// Makespan recomputes the maximum End across all tasks (valid after Run).
func (g *Graph) Makespan() Time {
	var m Time
	for _, t := range g.tasks {
		if t.End > m {
			m = t.End
		}
	}
	return m
}

// CriticalPath returns one chain of task ids ending at the makespan task,
// following, at each step, the dependency whose End equals the task's Ready
// time. Useful for explaining where time went in an experiment.
func (g *Graph) CriticalPath() []int {
	if len(g.tasks) == 0 {
		return nil
	}
	// Find the makespan task.
	last := g.tasks[0]
	for _, t := range g.tasks[1:] {
		if t.End > last.End {
			last = t
		}
	}
	// Build reverse dependency lists lazily: find, for each task on the path,
	// a predecessor that determined its readiness.
	prev := make(map[int][]int, len(g.tasks))
	for _, t := range g.tasks {
		for _, did := range t.dependents {
			prev[did] = append(prev[did], t.ID)
		}
	}
	var path []int
	cur := last
	for {
		path = append(path, cur.ID)
		var next *Task
		for _, pid := range prev[cur.ID] {
			p := g.tasks[pid]
			if p.End == cur.Ready {
				next = p
				break
			}
		}
		if next == nil {
			break
		}
		cur = next
	}
	// Reverse into source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
