package des

import (
	"context"
	"fmt"
)

// Task is a unit of work in a dependency graph. A task becomes ready when all
// of its dependencies have ended; it then occupies its Resource (if any) for
// Duration. Tasks without a Resource model pure delays (or instantaneous
// joins when Duration is zero).
type Task struct {
	ID       int
	Label    string
	Resource *Resource // nil for a delay/join task
	Duration Time

	// Filled in by Graph.Run.
	Ready Time // when all dependencies ended
	Start Time // when the resource was granted
	End   Time // Start + Duration (after resource slowdown)

	deps      int // remaining unfinished dependencies
	depsTotal int
	scheduled bool
	done      bool
	earliest  Time // lower bound on readiness independent of deps
}

// Graph is a DAG of Tasks executed over serialized Resources. Build it once,
// then call Run; the computed Start/End times answer every timing question an
// experiment asks.
//
// Tasks live in one contiguous slice — adding a task is an amortized slice
// append, not a heap allocation per task (use Reserve when the count is
// known). The *Task pointers returned by Task are therefore only stable
// once construction is done: hold ids, not pointers, while still adding.
// Dependency edges accumulate in one flat list and are compiled into a CSR
// adjacency at run time, so a task's dependent fan-out costs no per-task
// slice.
type Graph struct {
	tasks []Task
	edges []depEdge // (pred, succ) in insertion order
	// CSR adjacency compiled by RunErr: dependents of task i are
	// depAdj[depOff[i-1]:depOff[i]] (depOff[-1] treated as 0), preserving
	// per-pred insertion order for deterministic scheduling.
	depOff []int32
	depAdj []int32
	ready  []int32 // ready-heap scratch, reused across Reset/run cycles
	ran    bool
}

type depEdge struct{ pred, succ int32 }

// dependents returns task id's successors; valid after buildAdjacency.
func (g *Graph) dependents(id int32) []int32 {
	var start int32
	if id > 0 {
		start = g.depOff[id-1]
	}
	return g.depAdj[start:g.depOff[id]]
}

// buildAdjacency compiles the flat edge list into the CSR arrays: a counting
// sort by predecessor, stable in insertion order. depOff doubles as the fill
// cursor — after the forward fill, depOff[i] has advanced from task i's
// start offset to its end offset, which is exactly the convention
// dependents() reads.
func (g *Graph) buildAdjacency() {
	if cap(g.depOff) >= len(g.tasks) {
		g.depOff = g.depOff[:len(g.tasks)]
		for i := range g.depOff {
			g.depOff[i] = 0
		}
	} else {
		g.depOff = make([]int32, len(g.tasks)) // prealloc: exact CSR offset table
	}
	for _, e := range g.edges {
		g.depOff[e.pred]++
	}
	var sum int32
	for i := range g.depOff {
		c := g.depOff[i]
		g.depOff[i] = sum // start offset of task i
		sum += c
	}
	if cap(g.depAdj) >= len(g.edges) {
		g.depAdj = g.depAdj[:len(g.edges)]
	} else {
		g.depAdj = make([]int32, len(g.edges)) // prealloc: exact CSR payload
	}
	for _, e := range g.edges {
		g.depAdj[g.depOff[e.pred]] = e.succ
		g.depOff[e.pred]++
	}
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph { return &Graph{} }

// Reserve preallocates capacity for n tasks, so the following Adds don't
// grow the slice — and sizes the run-time scratch (CSR offset table, ready
// heap) that scales with the task count, so a reserved graph runs without
// growing those either. Schedule instantiation knows its task count up front.
func (g *Graph) Reserve(n int) {
	if cap(g.tasks)-len(g.tasks) < n {
		grown := make([]Task, len(g.tasks), len(g.tasks)+n) // prealloc: sizing the task store once
		copy(grown, g.tasks)
		g.tasks = grown
	}
	if cap(g.depOff) < cap(g.tasks) {
		g.depOff = make([]int32, 0, cap(g.tasks)) // prealloc: sizing the CSR offset table once
	}
	if cap(g.ready) < cap(g.tasks) {
		g.ready = make([]int32, 0, cap(g.tasks)) // prealloc: sizing the ready heap once
	}
}

// ReserveEdges preallocates capacity for n additional dependency edges (the
// flat edge list plus the CSR payload compiled at run time), so edge-heavy
// schedules declare and compile dependencies without growing either array.
func (g *Graph) ReserveEdges(n int) {
	if cap(g.edges)-len(g.edges) < n {
		grown := make([]depEdge, len(g.edges), len(g.edges)+n) // prealloc: sizing the edge list once
		copy(grown, g.edges)
		g.edges = grown
	}
	if cap(g.depAdj) < len(g.edges)+n {
		g.depAdj = make([]int32, 0, len(g.edges)+n) // prealloc: sizing the CSR payload once
	}
}

// Reset returns the graph to the empty, never-ran state while keeping every
// backing allocation — task store, edge list, CSR arrays, ready-heap scratch
// — so a caller rebuilding a same-shape graph reuses the warm capacity
// instead of reallocating it. Resources are not touched; reset them
// separately if they are reused too.
func (g *Graph) Reset() {
	g.tasks = g.tasks[:0]
	g.edges = g.edges[:0]
	g.ran = false
}

// NumTasks reports how many tasks have been added.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// Task returns the task with the given id. The pointer aliases the graph's
// task store: it is invalidated by a later Add, so only retain it after
// construction is complete.
func (g *Graph) Task(id int) *Task { return &g.tasks[id] }

// Add appends a task occupying res for d, depending on the given task ids,
// and returns its id. A nil res models a pure delay.
func (g *Graph) Add(label string, res *Resource, d Time, deps ...int) int {
	if g.ran {
		panic("des: adding task to a graph that already ran")
	}
	if d < 0 {
		panic(fmt.Sprintf("des: task %q has negative duration %v", label, d))
	}
	id := len(g.tasks)
	g.tasks = append(g.tasks, Task{ID: id, Label: label, Resource: res, Duration: d}) // amortized: Reserve sizes the store
	g.AddDeps(id, deps...)
	return id
}

// AddDeps declares that task id depends on each task in deps. Dependencies
// must already exist and must precede id (the graph is built topologically).
func (g *Graph) AddDeps(id int, deps ...int) {
	t := &g.tasks[id]
	for _, d := range deps {
		if d < 0 || d >= len(g.tasks) {
			panic(fmt.Sprintf("des: task %q depends on unknown task %d", t.Label, d))
		}
		if d == id {
			panic(fmt.Sprintf("des: task %q depends on itself", t.Label))
		}
		g.edges = append(g.edges, depEdge{pred: int32(d), succ: int32(id)}) // amortized: one flat list for all edges
		t.deps++
		t.depsTotal++
	}
}

// SetEarliest sets a lower bound on when the task may become ready,
// independent of its dependencies (e.g. an external arrival time).
func (g *Graph) SetEarliest(id int, t Time) {
	if g.ran {
		panic("des: mutating a graph that already ran")
	}
	g.tasks[id].earliest = t
}

// The ready queue is a hand-rolled binary min-heap of task ids ordered by
// (ready time, id) for deterministic FIFO grants — ids rather than pointers,
// and manual sifting rather than container/heap, to keep RunErr's inner loop
// free of interface dispatch.

func readyLess(tasks []Task, a, b int32) bool {
	if tasks[a].Ready != tasks[b].Ready {
		return tasks[a].Ready < tasks[b].Ready
	}
	return a < b
}

func readyPush(tasks []Task, h []int32, id int32) []int32 {
	h = append(h, id) // amortized: RunErr preallocates full capacity
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !readyLess(tasks, h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func readyPop(tasks []Task, h []int32) (int32, []int32) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && readyLess(tasks, h[r], h[l]) {
			min = r
		}
		if !readyLess(tasks, h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top, h
}

// TaskFault identifies one task refused by its failed resource.
type TaskFault struct {
	TaskID   int
	Label    string
	Resource string
	At       Time // when the task would have started
	FailedAt Time // when the resource died
}

// FaultError reports that a run aborted because a resource refused a task
// (see Resource.FailAt). The run stops deterministically at the first
// refusal; Executed counts the tasks that completed before it.
type FaultError struct {
	Faults   []TaskFault
	Executed int
	Total    int
}

func (e *FaultError) Error() string {
	f := e.Faults[0]
	return fmt.Sprintf("des: task %d %q refused by failed resource %s (died at %v, would start at %v); %d of %d tasks executed",
		f.TaskID, f.Label, f.Resource, f.FailedAt, f.At, e.Executed, e.Total)
}

// Run executes the graph and returns the makespan (max task End). It panics
// if the graph contains a dependency cycle (tasks would remain unexecuted)
// or if a failed resource refuses a task — use RunErr when faults are
// expected. Run may be called once per graph.
func (g *Graph) Run() Time {
	m, err := g.RunErr()
	if err != nil {
		panic(err.Error())
	}
	return m
}

// RunErr executes the graph and returns the makespan (max task End). When a
// failed resource (Resource.FailAt) refuses a task, the run aborts at that
// point and returns the makespan so far together with a *FaultError naming
// the refused task; callers repair the schedule and retry on a fresh graph.
// Dependency cycles still panic — they are construction bugs, not faults.
// RunErr may be called once per graph.
func (g *Graph) RunErr() (Time, error) { return g.runErr(nil) }

// runErr is the shared run loop behind RunErr and RunCtxErr. A nil ctx
// (or one whose Done channel is nil) skips the cancellation checkpoint
// entirely, so the uncancellable path pays nothing.
func (g *Graph) runErr(ctx context.Context) (Time, error) {
	if g.ran {
		panic("des: graph ran twice")
	}
	g.ran = true
	g.buildAdjacency()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}

	ready := g.ready[:0]
	if cap(ready) < len(g.tasks) {
		ready = make([]int32, 0, len(g.tasks)) // prealloc: every task enters the heap at most once
	}
	g.ready = ready // retain the backing array for the next Reset/run cycle
	for i := range g.tasks {
		t := &g.tasks[i]
		if t.deps == 0 {
			t.Ready = t.earliest
			t.scheduled = true
			ready = readyPush(g.tasks, ready, int32(i))
		}
	}

	var makespan Time
	executed := 0
	maxReadyDepth := len(ready)
	for len(ready) > 0 {
		if done != nil {
			select {
			case <-done:
				mTasksExecuted.Add(int64(executed))
				mReadyDepthMax.SetMax(float64(maxReadyDepth))
				return makespan, &CanceledError{
					At:        makespan,
					Executed:  executed,
					Remaining: len(g.tasks) - executed,
					Cause:     context.Cause(ctx),
				}
			default:
			}
		}
		if len(ready) > maxReadyDepth {
			maxReadyDepth = len(ready)
		}
		var id int32
		id, ready = readyPop(g.tasks, ready)
		t := &g.tasks[id]
		if t.Resource != nil {
			start, end, err := t.Resource.reserve(t.Ready, t.Duration, t.ID)
			if err != nil {
				ref := err.(*refusal)
				mTasksExecuted.Add(int64(executed))
				mReadyDepthMax.SetMax(float64(maxReadyDepth))
				return makespan, &FaultError{
					Faults: []TaskFault{{
						TaskID:   t.ID,
						Label:    t.Label,
						Resource: ref.Resource,
						At:       ref.At,
						FailedAt: ref.FailedAt,
					}},
					Executed: executed,
					Total:    len(g.tasks),
				}
			}
			t.Start, t.End = start, end
		} else {
			t.Start = t.Ready
			t.End = t.Start + t.Duration
		}
		t.done = true
		executed++
		if t.End > makespan {
			makespan = t.End
		}
		for _, did := range g.dependents(id) {
			d := &g.tasks[did]
			if t.End > d.Ready {
				d.Ready = t.End
			}
			d.deps--
			if d.deps == 0 {
				if d.earliest > d.Ready {
					d.Ready = d.earliest
				}
				d.scheduled = true
				ready = readyPush(g.tasks, ready, int32(did))
			}
		}
	}
	if executed != len(g.tasks) {
		panic(fmt.Sprintf("des: dependency cycle: %d of %d tasks executed", executed, len(g.tasks)))
	}
	mTasksExecuted.Add(int64(executed))
	mReadyDepthMax.SetMax(float64(maxReadyDepth))
	return makespan, nil
}

// Ran reports whether Run has executed.
func (g *Graph) Ran() bool { return g.ran }

// End returns the end time of task id (valid after Run).
func (g *Graph) End(id int) Time { return g.tasks[id].End }

// Done reports whether task id completed. After a clean Run every task is
// done; after an aborted run (FaultError, CanceledError) the done set is the
// executed prefix, which is what checkpoint/resume machinery needs to decide
// which work survives a mid-run repair.
func (g *Graph) Done(id int) bool { return g.tasks[id].done }

// Makespan recomputes the maximum End across all tasks (valid after Run).
func (g *Graph) Makespan() Time {
	var m Time
	for i := range g.tasks {
		if g.tasks[i].End > m {
			m = g.tasks[i].End
		}
	}
	return m
}

// CriticalPath returns one chain of task ids ending at the makespan task,
// following, at each step, the dependency whose End equals the task's Ready
// time. Useful for explaining where time went in an experiment.
func (g *Graph) CriticalPath() []int {
	if len(g.tasks) == 0 {
		return nil
	}
	// Find the makespan task.
	last := &g.tasks[0]
	for i := range g.tasks[1:] {
		if t := &g.tasks[i+1]; t.End > last.End {
			last = t
		}
	}
	// Build reverse dependency lists lazily: find, for each task on the path,
	// a predecessor that determined its readiness.
	prev := make(map[int][]int, len(g.tasks))
	for _, e := range g.edges {
		prev[int(e.succ)] = append(prev[int(e.succ)], int(e.pred))
	}
	var path []int
	cur := last
	for {
		path = append(path, cur.ID)
		var next *Task
		for _, pid := range prev[cur.ID] {
			if p := &g.tasks[pid]; p.End == cur.Ready {
				next = p
				break
			}
		}
		if next == nil {
			break
		}
		cur = next
	}
	// Reverse into source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
