package des

import (
	"math/rand"
	"testing"
)

// randomGraph builds a random DAG over a pool of resources. Dependencies
// only point backwards (toward lower task ids), so the graph is acyclic by
// construction.
func randomGraph(rng *rand.Rand) (*Graph, []*Resource, [][]int) {
	g := NewGraph()
	nRes := rng.Intn(6) + 1
	res := make([]*Resource, nRes)
	for i := range res {
		res[i] = NewResource("r")
	}
	nTasks := rng.Intn(200) + 1
	deps := make([][]int, nTasks)
	for i := 0; i < nTasks; i++ {
		var r *Resource
		if rng.Intn(4) != 0 { // 1/4 of tasks are pure delays
			r = res[rng.Intn(nRes)]
		}
		if i > 0 {
			nd := rng.Intn(3)
			for j := 0; j < nd; j++ {
				deps[i] = append(deps[i], rng.Intn(i))
			}
		}
		g.Add("t", r, Time(rng.Intn(1000)), deps[i]...)
	}
	return g, res, deps
}

func TestGraphPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		g, res, deps := randomGraph(rng)
		makespan := g.Run()

		var maxEnd Time
		for i := 0; i < g.NumTasks(); i++ {
			task := g.Task(i)
			// Start/End consistency.
			if task.Start < task.Ready {
				t.Fatalf("iter %d task %d: start %v before ready %v", iter, i, task.Start, task.Ready)
			}
			if task.End < task.Start {
				t.Fatalf("iter %d task %d: end %v before start %v", iter, i, task.End, task.Start)
			}
			if task.Resource == nil && task.End != task.Start+task.Duration {
				t.Fatalf("iter %d task %d: delay task duration wrong", iter, i)
			}
			// Causality: no task starts before all dependencies ended.
			for _, d := range deps[i] {
				if task.Start < g.Task(d).End {
					t.Fatalf("iter %d: task %d started %v before dep %d ended %v",
						iter, i, task.Start, d, g.Task(d).End)
				}
			}
			if task.End > maxEnd {
				maxEnd = task.End
			}
		}
		if makespan != maxEnd {
			t.Fatalf("iter %d: makespan %v != max end %v", iter, makespan, maxEnd)
		}
		if g.Makespan() != maxEnd {
			t.Fatalf("iter %d: Makespan() %v != max end %v", iter, g.Makespan(), maxEnd)
		}
		// Resource serialization.
		for _, r := range res {
			if err := r.ValidateSerialized(); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	}
}

func TestGraphDeterminism(t *testing.T) {
	// Two runs of identically built graphs must give identical timelines.
	build := func() *Graph {
		rng := rand.New(rand.NewSource(99))
		g, _, _ := randomGraph(rng)
		return g
	}
	g1, g2 := build(), build()
	if g1.Run() != g2.Run() {
		t.Fatal("identical graphs produced different makespans")
	}
	for i := 0; i < g1.NumTasks(); i++ {
		if g1.Task(i).Start != g2.Task(i).Start || g1.Task(i).End != g2.Task(i).End {
			t.Fatalf("task %d timing differs between identical runs", i)
		}
	}
}

func TestGraphWorkConservation(t *testing.T) {
	// A resource is never idle while a task that only needs that resource
	// has been ready: total busy time equals the sum of scheduled durations.
	rng := rand.New(rand.NewSource(44))
	for iter := 0; iter < 50; iter++ {
		g, res, _ := randomGraph(rng)
		g.Run()
		var wantBusy Time
		for i := 0; i < g.NumTasks(); i++ {
			task := g.Task(i)
			if task.Resource != nil {
				wantBusy += task.End - task.Start
			}
		}
		var gotBusy Time
		for _, r := range res {
			gotBusy += r.BusyTime()
		}
		if gotBusy != wantBusy {
			t.Fatalf("iter %d: busy %v != scheduled %v", iter, gotBusy, wantBusy)
		}
	}
}

func TestCriticalPathProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 50; iter++ {
		g, _, _ := randomGraph(rng)
		g.Run()
		path := g.CriticalPath()
		if len(path) == 0 {
			t.Fatalf("iter %d: empty critical path", iter)
		}
		// The path ends at a makespan task and is causally ordered.
		last := g.Task(path[len(path)-1])
		if last.End != g.Makespan() {
			t.Fatalf("iter %d: critical path ends at %v, makespan %v", iter, last.End, g.Makespan())
		}
		for i := 1; i < len(path); i++ {
			prev, cur := g.Task(path[i-1]), g.Task(path[i])
			if prev.End > cur.Ready {
				t.Fatalf("iter %d: critical path not causally ordered", iter)
			}
		}
	}
}
