package des

import (
	"fmt"
	"testing"
)

// Engine micro-benchmarks: the per-event and per-task costs every simulated
// experiment pays. Run with -benchmem; steady-state allocs/op must be 0 for
// the engine and resource benches (asserted by alloc_test.go, smoked by CI).

// BenchmarkEngineScheduleRun measures one schedule-then-drain cycle of 1024
// events on a warm engine — the DES hot path in isolation.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	const n = 1024
	e.Reserve(n)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < n; j++ {
			e.At(base+Time(j%13), fn)
		}
		e.Run()
	}
	b.ReportMetric(float64(e.Fired())/float64(b.N), "events/op")
}

// BenchmarkEngineScheduleCancelRun measures the lazy-cancellation path: half
// the events are cancelled and collected at pop time.
func BenchmarkEngineScheduleCancelRun(b *testing.B) {
	e := NewEngine()
	const n = 1024
	e.Reserve(n)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < n; j++ {
			h := e.At(base+Time(j%13), fn)
			if j%2 == 0 {
				h.Cancel()
			}
		}
		e.Run()
	}
}

// BenchmarkResourceReserveReset measures resource acquire/release cycles.
func BenchmarkResourceReserveReset(b *testing.B) {
	r := NewResource("link")
	const n = 1024
	r.Prealloc(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			if _, _, err := r.reserve(Time(j), 10, j); err != nil {
				b.Fatal(err)
			}
		}
		r.Reset()
	}
}

// BenchmarkGraphPipeline measures Graph build+run of the K-chunk pipeline
// shape every collective schedule reduces to: d serialized links, k chunks.
// Graphs are one-shot by design, so the build cost is part of the metric.
func BenchmarkGraphPipeline(b *testing.B) {
	for _, size := range []struct{ d, k int }{{4, 64}, {8, 256}} {
		b.Run(fmt.Sprintf("links%d-chunks%d", size.d, size.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := NewGraph()
				links := make([]*Resource, size.d)
				for l := range links {
					links[l] = NewResource("link")
				}
				prev := make([]int, size.k)
				for l := 0; l < size.d; l++ {
					for c := 0; c < size.k; c++ {
						if l == 0 {
							prev[c] = g.Add("hop", links[l], 100)
						} else {
							prev[c] = g.Add("hop", links[l], 100, prev[c])
						}
					}
				}
				g.Run()
			}
		})
	}
}
