package des

import "ccube/internal/metrics"

// Engine and resource instruments, registered once against the process-wide
// registry. Every update below is a single atomic check-and-add — zero
// allocations whether collection is enabled or not, which the AllocsPerRun
// tests in alloc_test.go pin.
var (
	mEventsScheduled = metrics.Default.Counter("des_events_scheduled_total",
		"events submitted via Engine.At/After")
	mEventsFired = metrics.Default.Counter("des_events_fired_total",
		"events whose callbacks executed")
	mEventsCancelled = metrics.Default.Counter("des_events_cancelled_dropped_total",
		"cancelled events collected at pop time without firing")
	mPoolRecycled = metrics.Default.Counter("des_event_pool_recycled_total",
		"event records returned to the free list for reuse")
	mPoolAlloc = metrics.Default.Counter("des_event_pool_alloc_total",
		"event records allocated because the free list was empty")
	mTasksExecuted = metrics.Default.Counter("des_tasks_executed_total",
		"graph tasks completed by Graph.Run/RunErr")
	mReadyDepthMax = metrics.Default.Gauge("des_ready_queue_depth_max",
		"high-water mark of the ready-task heap across runs")
	mResourceBusyNS = metrics.Default.Counter("des_resource_busy_ns_total",
		"virtual nanoseconds of resource occupancy granted by reserve")
)
