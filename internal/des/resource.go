package des

import "fmt"

// Interval is a half-open occupancy window [Start, End) on a Resource.
type Interval struct {
	Start, End Time
	TaskID     int
}

// Resource is a serialized server: at most one task occupies it at a time,
// and tasks are granted in the order they become ready (FIFO by ready time,
// ties broken deterministically by task sequence). Physical links and GPU
// compute streams are Resources.
type Resource struct {
	Name string

	freeAt Time
	busy   []Interval // recorded occupancy, in grant order

	// Slowdown multiplies every duration scheduled on this resource, in
	// parts-per-million (1_000_000 = no slowdown). It models resource "taxes"
	// such as detour-forwarding kernels stealing SM time on a GPU.
	slowdownPPM int64
}

// NewResource returns an idle resource with no slowdown.
func NewResource(name string) *Resource {
	return &Resource{Name: name, slowdownPPM: 1_000_000}
}

// SetSlowdown sets a multiplicative duration factor. factor must be >= 1.
func (r *Resource) SetSlowdown(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("des: slowdown factor %v < 1 on %s", factor, r.Name))
	}
	r.slowdownPPM = int64(factor * 1_000_000)
}

// scaled applies the resource slowdown to a duration.
func (r *Resource) scaled(d Time) Time {
	if r.slowdownPPM == 1_000_000 {
		return d
	}
	return Time(int64(d) * r.slowdownPPM / 1_000_000)
}

// reserve grants the resource to a task that became ready at `ready` for
// duration d, returning the granted [start, end) window.
func (r *Resource) reserve(ready Time, d Time, taskID int) (start, end Time) {
	start = ready
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + r.scaled(d)
	r.freeAt = end
	r.busy = append(r.busy, Interval{Start: start, End: end, TaskID: taskID})
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Busy returns the recorded occupancy intervals in grant order. The returned
// slice is owned by the resource; callers must not mutate it.
func (r *Resource) Busy() []Interval { return r.busy }

// BusyTime returns the total occupied time on the resource.
func (r *Resource) BusyTime() Time {
	var total Time
	for _, iv := range r.busy {
		total += iv.End - iv.Start
	}
	return total
}

// Utilization returns BusyTime divided by the horizon (0 if horizon is 0).
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(horizon)
}

// Reset clears occupancy so the resource can be reused for another run.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = r.busy[:0]
}

// ValidateSerialized checks that recorded intervals never overlap; it returns
// an error naming the first violation. This is a structural invariant of the
// simulator itself and is asserted by tests after every experiment run.
func (r *Resource) ValidateSerialized() error {
	for i := 1; i < len(r.busy); i++ {
		if r.busy[i].Start < r.busy[i-1].End {
			return fmt.Errorf("des: resource %s: interval %d [%v,%v) overlaps previous [%v,%v)",
				r.Name, i, r.busy[i].Start, r.busy[i].End, r.busy[i-1].Start, r.busy[i-1].End)
		}
	}
	return nil
}
