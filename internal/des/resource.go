package des

import (
	"fmt"
	"math"
)

// Interval is a half-open occupancy window [Start, End) on a Resource.
type Interval struct {
	Start, End Time
	TaskID     int
}

// slowBreak is a scheduled slowdown change: from At onward, durations scale
// by PPM parts-per-million.
type slowBreak struct {
	At  Time
	PPM int64
}

// Resource is a serialized server: at most one task occupies it at a time,
// and tasks are granted in the order they become ready (FIFO by ready time,
// ties broken deterministically by task sequence). Physical links and GPU
// compute streams are Resources.
type Resource struct {
	Name string

	freeAt Time
	busy   []Interval // recorded occupancy, in grant order

	// Slowdown multiplies every duration scheduled on this resource, in
	// parts-per-million (1_000_000 = no slowdown). It models resource "taxes"
	// such as detour-forwarding kernels stealing SM time on a GPU.
	slowdownPPM int64

	// breaks are scheduled slowdown changes (fault injection), sorted by At.
	// The factor in effect at a reservation's start time applies to its whole
	// duration.
	breaks []slowBreak

	// failAt, when hasFail, is the virtual time at which the resource dies:
	// any reservation that would start at or after failAt is refused.
	failAt  Time
	hasFail bool
}

// NewResource returns an idle resource with no slowdown.
func NewResource(name string) *Resource {
	return &Resource{Name: name, slowdownPPM: 1_000_000}
}

func factorPPM(factor float64) int64 {
	return int64(math.Round(factor * 1_000_000))
}

// SetSlowdown sets a multiplicative duration factor. factor must be >= 1.
// The factor is stored in parts-per-million, rounded to the nearest ppm.
// Calling it on a resource that already has recorded occupancy panics:
// rescaling granted intervals retroactively would silently corrupt a run.
func (r *Resource) SetSlowdown(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("des: slowdown factor %v < 1 on %s", factor, r.Name))
	}
	if len(r.busy) > 0 {
		panic(fmt.Sprintf("des: SetSlowdown on %s after %d reservations", r.Name, len(r.busy)))
	}
	r.slowdownPPM = factorPPM(factor)
}

// SetSlowdownAt schedules a slowdown change at virtual time at: reservations
// starting at or after it scale by factor (>= 1; 1 restores full speed).
// Changes must be added in nondecreasing time order, before the resource has
// any occupancy.
func (r *Resource) SetSlowdownAt(at Time, factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("des: slowdown factor %v < 1 on %s", factor, r.Name))
	}
	if at < 0 {
		panic(fmt.Sprintf("des: SetSlowdownAt(%v) on %s", at, r.Name))
	}
	if len(r.busy) > 0 {
		panic(fmt.Sprintf("des: SetSlowdownAt on %s after %d reservations", r.Name, len(r.busy)))
	}
	if n := len(r.breaks); n > 0 && r.breaks[n-1].At > at {
		panic(fmt.Sprintf("des: SetSlowdownAt out of order on %s: %v after %v", r.Name, at, r.breaks[n-1].At))
	}
	r.breaks = append(r.breaks, slowBreak{At: at, PPM: factorPPM(factor)})
}

// FailAt schedules the resource's death: any reservation starting at or
// after `at` is refused with a structured error (Graph.RunErr surfaces it as
// a FaultError). A reservation already started when the failure hits runs to
// completion — links fail between transfers, not mid-flit, in this model.
func (r *Resource) FailAt(at Time) {
	if at < 0 {
		panic(fmt.Sprintf("des: FailAt(%v) on %s", at, r.Name))
	}
	r.failAt = at
	r.hasFail = true
}

// Failed reports whether the resource is scheduled to die, and when.
func (r *Resource) Failed() (Time, bool) { return r.failAt, r.hasFail }

// ppmAt returns the slowdown in effect at time t.
func (r *Resource) ppmAt(t Time) int64 {
	ppm := r.slowdownPPM
	for _, b := range r.breaks {
		if b.At > t {
			break
		}
		ppm = b.PPM
	}
	return ppm
}

// scaledAt applies the slowdown in effect at start to a duration.
func (r *Resource) scaledAt(start Time, d Time) Time {
	ppm := r.ppmAt(start)
	if ppm == 1_000_000 {
		return d
	}
	return Time(int64(d) * ppm / 1_000_000)
}

// refusal is returned by reserve when the resource has failed.
type refusal struct {
	Resource string
	At       Time // when the reservation would have started
	FailedAt Time // when the resource died
}

func (e *refusal) Error() string {
	return fmt.Sprintf("des: resource %s failed at %v, refused reservation at %v", e.Resource, e.FailedAt, e.At)
}

// reserve grants the resource to a task that became ready at `ready` for
// duration d, returning the granted [start, end) window. A failed resource
// refuses any reservation starting at or after its failure time.
func (r *Resource) reserve(ready Time, d Time, taskID int) (start, end Time, err error) {
	start = ready
	if r.freeAt > start {
		start = r.freeAt
	}
	if r.hasFail && start >= r.failAt {
		return 0, 0, &refusal{Resource: r.Name, At: start, FailedAt: r.failAt}
	}
	end = start + r.scaledAt(start, d)
	r.freeAt = end
	r.busy = append(r.busy, Interval{Start: start, End: end, TaskID: taskID}) // amortized: Reset keeps the backing array
	mResourceBusyNS.Add(int64(end - start))
	return start, end, nil
}

// Prealloc ensures capacity for n further occupancy intervals, so a sized
// workload reserves with zero allocations from the first grant on (Reset
// already keeps the backing array, making steady-state reuse
// allocation-free).
func (r *Resource) Prealloc(n int) {
	if want := len(r.busy) + n; cap(r.busy) < want {
		grown := make([]Interval, len(r.busy), want) // prealloc: sizing the interval log once
		copy(grown, r.busy)
		r.busy = grown
	}
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Busy returns the recorded occupancy intervals in grant order. The returned
// slice is owned by the resource; callers must not mutate it.
func (r *Resource) Busy() []Interval { return r.busy }

// BusyTime returns the total occupied time on the resource.
func (r *Resource) BusyTime() Time {
	var total Time
	for _, iv := range r.busy {
		total += iv.End - iv.Start
	}
	return total
}

// Utilization returns BusyTime divided by the horizon (0 if horizon is 0).
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.BusyTime()) / float64(horizon)
}

// Reset clears occupancy so the resource can be reused for another run.
// Slowdown and fault configuration survive a Reset; only the schedule state
// is cleared.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = r.busy[:0]
}

// ValidateSerialized checks that recorded intervals never overlap; it returns
// an error naming the first violation. This is a structural invariant of the
// simulator itself and is asserted by tests after every experiment run.
func (r *Resource) ValidateSerialized() error {
	for i := 1; i < len(r.busy); i++ {
		if r.busy[i].Start < r.busy[i-1].End {
			return fmt.Errorf("des: resource %s: interval %d [%v,%v) overlaps previous [%v,%v)",
				r.Name, i, r.busy[i].Start, r.busy[i].End, r.busy[i-1].Start, r.busy[i-1].End)
		}
	}
	return nil
}
