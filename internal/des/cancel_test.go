package des

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestEngineRunCtxUncancelled proves RunCtx with a background context is
// exactly Run: same final time, all events fired.
func TestEngineRunCtxUncancelled(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i*5), func() { fired++ })
	}
	end, err := e.RunCtx(context.Background())
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if end != 45 || fired != 10 {
		t.Fatalf("end=%v fired=%d, want 45/10", end, fired)
	}
}

// TestEngineRunCtxCancelMidRun is the mid-simulation abort proof: an event
// cancels the context at virtual time 50, and the very next pop observes
// it — no later event fires, the clock stops where cancellation happened,
// and the remaining events stay pending.
func TestEngineRunCtxCancelMidRun(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	for i := 0; i < 100; i++ {
		at := Time(i)
		if at == 50 {
			e.At(at, func() { fired++; cancel() })
		} else {
			e.At(at, func() { fired++ })
		}
	}
	end, err := e.RunCtx(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("RunCtx after mid-run cancel returned %v, want *CanceledError", err)
	}
	if fired != 51 {
		t.Fatalf("fired %d events, want exactly 51 (through the cancelling one)", fired)
	}
	if end != 50 || ce.At != 50 {
		t.Fatalf("end=%v ce.At=%v, want both 50", end, ce.At)
	}
	if ce.Executed != 51 || ce.Remaining != 49 {
		t.Fatalf("ce = %d executed / %d remaining, want 51/49", ce.Executed, ce.Remaining)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CanceledError does not unwrap to context.Canceled: %v", err)
	}
	if e.Pending() != 49 {
		t.Fatalf("pending=%d after cancelled run, want 49", e.Pending())
	}
	// The engine stays usable: a plain Run drains the leftovers.
	e.Run()
	if fired != 100 || e.Pending() != 0 {
		t.Fatalf("drain run: fired=%d pending=%d, want 100/0", fired, e.Pending())
	}
}

// TestEngineRunCtxDeadline pins the deadline flavor: an already-expired
// deadline aborts before the first event and unwraps to DeadlineExceeded.
func TestEngineRunCtxDeadline(t *testing.T) {
	e := NewEngine()
	e.At(10, func() { t.Fatal("event fired under an expired deadline") })
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := e.RunCtx(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want context.DeadlineExceeded", ce.Cause)
	}
	if ce.Executed != 0 || ce.Remaining != 1 {
		t.Fatalf("ce = %d executed / %d remaining, want 0/1", ce.Executed, ce.Remaining)
	}
}

// TestGraphRunCtxErrCancelled proves the task-graph checkpoint: a graph run
// under a cancelled context executes nothing and reports every task
// remaining, and the typed error flows through errors.As/Is like the
// engine's.
func TestGraphRunCtxErrCancelled(t *testing.T) {
	g := NewGraph()
	r := NewResource("link")
	prev := g.Add("t0", r, 10)
	for i := 1; i < 64; i++ {
		prev = g.Add("t", r, 10, prev)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.RunCtxErr(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CanceledError", err)
	}
	if ce.Executed != 0 || ce.Remaining != 64 {
		t.Fatalf("ce = %d executed / %d remaining, want 0/64", ce.Executed, ce.Remaining)
	}
	if !g.Ran() {
		t.Fatal("cancelled graph must count as ran")
	}
}

// TestGraphRunCtxErrUncancelled proves an uncancelled RunCtxErr matches
// RunErr exactly on an identical graph (determinism contract).
func TestGraphRunCtxErrUncancelled(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		r := NewResource("link")
		a := g.Add("a", r, 7)
		b := g.Add("b", r, 5)
		g.Add("c", nil, 3, a, b)
		return g
	}
	g1, g2 := build(), build()
	m1, err1 := g1.RunErr()
	m2, err2 := g2.RunCtxErr(context.Background())
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v / %v", err1, err2)
	}
	if m1 != m2 {
		t.Fatalf("makespan diverged: RunErr=%v RunCtxErr=%v", m1, m2)
	}
}

// TestGraphRunCtxPanicsOnFaultNotCancel pins Graph.RunCtx's contract:
// cancellation returns the typed error rather than panicking.
func TestGraphRunCtxCancelReturnsError(t *testing.T) {
	g := NewGraph()
	g.Add("t", nil, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.RunCtx(ctx)
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("RunCtx under cancellation returned %v, want *CanceledError", err)
	}
}
