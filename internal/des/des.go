// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is the timing substrate for every simulated experiment in this
// repository: collective-communication schedules, training-iteration
// pipelines, and scale-out studies all compile down to a dependency graph of
// Tasks executed on serialized Resources (links, GPU compute streams).
//
// Time is virtual and measured in integer nanoseconds, so runs are exactly
// reproducible: two executions of the same graph yield bit-identical
// timelines regardless of host load.
//
// The hot path is allocation-free in steady state: fired (and cancelled)
// events are recycled onto a per-engine free list, the event heap reuses its
// backing array, and At/After only allocate while the pool is still growing
// toward the engine's high-water mark. Regression tests assert this with
// testing.AllocsPerRun, and cmd/ccube-lint's des-hot-alloc rule flags any
// unannotated make/append that sneaks into the hot functions.
package des

import (
	"context"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, for readability in model code and tests.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is the engine-internal record backing a scheduled callback. Events
// are pooled: after an event fires (or its cancellation is collected at pop
// time) the record returns to the engine's free list and its generation is
// bumped, which inertly invalidates every outstanding Event handle to it.
type event struct {
	at       Time
	seq      uint64 // tie-breaker preserving schedule order at equal times
	gen      uint64 // incremented on recycle; guards stale handles
	fn       func()
	canceled bool
}

// Event is a cancellable handle to a scheduled callback, returned by
// At/After. It is a small value; copying it is cheap and safe.
//
// Cancel contract: cancelling is only meaningful while the event is pending.
// Once the event has fired (or a completed Run has drained it), the engine
// recycles its storage for future events; the handle detects this through a
// generation check, so Cancel after fire is always a safe no-op — it can
// never cancel an unrelated event that happened to reuse the storage. The
// zero Event is inert.
type Event struct {
	ev  *event
	gen uint64
	at  Time
}

// Cancel prevents a pending event from firing. The event's storage is
// reclaimed lazily: it stays in the heap until its fire time, at which point
// the engine drops it without running the callback and recycles it into the
// pool. Cancelling an event that has already fired (or cancelling twice) is
// a no-op; see the Event type for the exact contract.
func (h Event) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.canceled = true
	}
}

// At reports the virtual time the event was scheduled for. It stays valid
// after the event fires.
func (h Event) At() Time { return h.at }

// Pending reports whether the event is still scheduled: not yet fired and
// not cancelled.
func (h Event) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.canceled
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
type Engine struct {
	now    Time
	events []*event // binary min-heap by (at, seq)
	pool   []*event // recycled records, reused by At/After
	seq    uint64
	fired  int

	// Batch-drain scratch, reused across runs (see popRun). The collective
	// schedules this engine executes are bulk-synchronous: many events share
	// a timestamp, and draining the whole run with one round of sift-downs
	// amortizes the heap fix-ups the serial pop pays per event.
	batch []seqEntry // current run of equal-timestamp events, fired in seq order
	holes []int32    // BFS worklist = heap slots vacated by the drain, ascending
}

// seqEntry pairs a drained event with its seq so the batch sort compares a
// contiguous scratch array instead of chasing event pointers.
type seqEntry struct {
	seq uint64
	ev  *event
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Reserve preallocates capacity for n simultaneously pending events (heap
// slots plus pooled records), so a sized workload schedules with zero
// allocations from the first event on.
func (e *Engine) Reserve(n int) {
	if cap(e.events) < n {
		grown := make([]*event, len(e.events), n) // prealloc: sizing the heap once
		copy(grown, e.events)
		e.events = grown
	}
	if cap(e.pool) < n {
		grown := make([]*event, len(e.pool), n) // prealloc: sizing the pool once
		copy(grown, e.pool)
		e.pool = grown
	}
	for len(e.pool)+len(e.events) < n {
		e.pool = append(e.pool, &event{}) // prealloc: filling the reserved pool
	}
	if cap(e.batch) < n {
		e.batch = make([]seqEntry, 0, n) // prealloc: sizing the drain batch once
	}
	if cap(e.holes) < n {
		e.holes = make([]int32, 0, n) // prealloc: sizing the drain hole list once
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far (cancelled events do
// not count).
func (e *Engine) Fired() int { return e.fired }

// Pending reports how many events are scheduled but not yet executed.
// Cancelled events still count until their storage is collected at pop time.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality in a model.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, e.now))
	}
	mEventsScheduled.Inc()
	var ev *event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
	} else {
		ev = &event{}
		mPoolAlloc.Inc()
	}
	ev.at, ev.seq, ev.fn, ev.canceled = t, e.seq, fn, false
	e.seq++
	e.push(ev)
	return Event{ev: ev, gen: ev.gen, at: t}
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Run executes events in timestamp order until none remain. It returns the
// final virtual time.
//
// Internally events are drained in runs of equal timestamps (popRun) and
// fired in seq order, which is bit-identical to popping them one at a time:
// (at, seq) is a total order, and callbacks scheduled mid-run receive higher
// seq values, so they land in a later batch of the same timestamp.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		e.popRun()
		e.fireBatch(nil, nil)
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.popRun()
		e.fireBatch(nil, nil)
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// step pops and executes a single event. It is the per-event reference
// implementation the batched drain is property-tested against
// (TestBatchedDrainMatchesSerial); production runs go through
// popRun/fireBatch instead.
func (e *Engine) step() {
	ev := e.pop()
	if ev.canceled {
		mEventsCancelled.Inc()
		e.recycle(ev)
		return
	}
	if ev.at < e.now {
		panic("des: event heap time went backwards")
	}
	e.now = ev.at
	e.fired++
	mEventsFired.Inc()
	fn := ev.fn
	e.recycle(ev)
	fn()
}

// recycle returns an event record to the pool, invalidating outstanding
// handles via the generation bump and dropping the callback reference so the
// pool does not retain closures.
func (e *Engine) recycle(ev *event) {
	mPoolRecycled.Inc()
	e.recycleQuiet(ev)
}

// recycleQuiet is recycle without the per-event metric update; fireBatch
// recycles a whole run and publishes one batched counter add instead.
func (e *Engine) recycleQuiet(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	e.pool = append(e.pool, ev) // amortized: pool capacity is reused across steps
}

// less orders events by (time, schedule sequence); the sequence tie-break
// keeps equal-time events in submission order, the determinism contract.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the heap (sift-up). Hand-rolled instead of
// container/heap so the hot path stays monomorphic and interface-free.
func (e *Engine) push(ev *event) {
	e.events = append(e.events, ev) // amortized: heap capacity is reused across runs
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e.events[i], e.events[parent]) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// pop removes and returns the earliest event (sift-down).
func (e *Engine) pop() *event {
	h := e.events
	root := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.events = h[:n]
	e.siftDown(0)
	return root
}

// siftDown restores the heap property in the subtree rooted at slot i.
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventLess(h[l], h[min]) {
			min = l
		}
		if r < n && eventLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// popRun drains every event sharing the earliest timestamp into e.batch, in
// seq order, using one round of sift-downs for the whole run.
//
// Correctness: t = h[0].at is the heap minimum, so any node with at == t has
// a parent with at == t — the equal-time events form a connected subtree
// containing the root. The BFS below walks exactly that subtree; because a
// heap level occupies a contiguous, strictly increasing index range and the
// queue appends children of ascending parents in ascending order, the visit
// order — and therefore e.holes, the slots the run vacates — is ascending by
// construction, no sort needed. The drained events are sorted by seq on a
// contiguous (seq, ev) scratch array and fired in that order, the same total
// order (at, seq) the serial engine pops in. The holes are then refilled
// from the heap tail, deepest hole first: processing hole indices in
// descending order keeps every fill source at or beyond the shrinking tail
// boundary (a hole index can never exceed the current tail, and equal means
// the hole is the tail itself). Non-hole positions still satisfy the heap
// property among themselves, so sifting the filled slots down in descending
// index order — children before parents, Floyd's bottom-up heapify argument
// — restores a valid heap while touching only the affected paths.
func (e *Engine) popRun() {
	h := e.events
	n := len(h)
	t := h[0].at
	e.batch = e.batch[:0]
	// Single-event fast path: neither child of the root shares its
	// timestamp, so the run is just the root and the drain degenerates to
	// the classic pop.
	if (n < 2 || h[1].at != t) && (n < 3 || h[2].at != t) {
		ev := e.pop()
		e.batch = append(e.batch, seqEntry{ev.seq, ev}) // amortized: batch capacity is reused across runs
		return
	}
	holes := append(e.holes[:0], 0) // amortized: hole-list capacity is reused across runs
	for qi := 0; qi < len(holes); qi++ {
		i := int(holes[qi])
		ev := h[i]
		e.batch = append(e.batch, seqEntry{ev.seq, ev}) // amortized: batch capacity is reused across runs
		if l := 2*i + 1; l < n && h[l].at == t {
			holes = append(holes, int32(l)) // amortized: hole-list capacity is reused across runs
		}
		if r := 2*i + 2; r < n && h[r].at == t {
			holes = append(holes, int32(r)) // amortized: hole-list capacity is reused across runs
		}
	}
	e.holes = holes
	// Refill the vacated slots from the heap tail and restore the heap with
	// one bottom-up round of sift-downs.
	for j := len(holes) - 1; j >= 0; j-- {
		i := int(holes[j])
		n--
		if i != n {
			h[i] = h[n]
		}
		h[n] = nil
	}
	e.events = h[:n]
	for j := len(holes) - 1; j >= 0; j-- {
		if i := int(holes[j]); i < n {
			e.siftDown(i)
		}
	}
	sortBySeq(e.batch)
}

// sortBySeq orders one drained run ascending by seq: an already-sorted scan
// first (bulk-synchronous schedules enqueue same-time events in seq order,
// and the BFS drain largely preserves it), insertion sort for short runs,
// in-place heapsort above that — O(k log k) worst case with no allocation
// and no indirect comparison calls.
func sortBySeq(a []seqEntry) {
	n := len(a)
	sorted := true
	for i := 1; i < n; i++ {
		if a[i-1].seq > a[i].seq {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if n < 16 {
		for i := 1; i < n; i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && a[j].seq > x.seq {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftEntryDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftEntryDown(a, 0, end)
	}
}

// siftEntryDown restores the max-heap-by-seq property at slot i of a[:n].
func siftEntryDown(a []seqEntry, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		max := l
		if r := l + 1; r < n && a[r].seq > a[l].seq {
			max = r
		}
		if a[max].seq <= a[i].seq {
			return
		}
		a[i], a[max] = a[max], a[i]
		i = max
	}
}

// fireBatch executes the drained run in seq order. Cancelled events are
// dropped at fire position — exactly where the serial pop would have dropped
// them, so a callback cancelling a later event in the same batch still
// suppresses it. When done is non-nil the context is checked before every
// event (fired or dropped), matching the serial RunCtx checkpoint; on
// cancellation the unfired remainder is pushed back into the heap so the
// engine stays reusable and Remaining counts every still-pending event.
// Metrics are published as one batched add per counter; the totals match the
// serial engine's per-event increments.
func (e *Engine) fireBatch(ctx context.Context, done <-chan struct{}) (Time, error) {
	fired, cancelled := 0, 0
	for i, ent := range e.batch {
		ev := ent.ev
		if done != nil {
			select {
			case <-done:
				for _, rest := range e.batch[i:] {
					e.push(rest.ev)
				}
				e.batch = e.batch[:0]
				e.flushBatchMetrics(fired, cancelled)
				return e.now, &CanceledError{
					At:        e.now,
					Executed:  e.fired,
					Remaining: len(e.events),
					Cause:     context.Cause(ctx),
				}
			default:
			}
		}
		if ev.canceled {
			cancelled++
			e.recycleQuiet(ev)
			continue
		}
		if ev.at < e.now {
			panic("des: event heap time went backwards")
		}
		e.now = ev.at
		e.fired++
		fired++
		fn := ev.fn
		e.recycleQuiet(ev)
		fn()
	}
	e.batch = e.batch[:0]
	e.flushBatchMetrics(fired, cancelled)
	return e.now, nil
}

// flushBatchMetrics publishes one batch's counter deltas.
func (e *Engine) flushBatchMetrics(fired, cancelled int) {
	if fired > 0 {
		mEventsFired.Add(int64(fired))
	}
	if cancelled > 0 {
		mEventsCancelled.Add(int64(cancelled))
	}
	if fired+cancelled > 0 {
		mPoolRecycled.Add(int64(fired + cancelled))
	}
}
