// Package des implements a deterministic discrete-event simulation engine.
//
// The engine is the timing substrate for every simulated experiment in this
// repository: collective-communication schedules, training-iteration
// pipelines, and scale-out studies all compile down to a dependency graph of
// Tasks executed on serialized Resources (links, GPU compute streams).
//
// Time is virtual and measured in integer nanoseconds, so runs are exactly
// reproducible: two executions of the same graph yield bit-identical
// timelines regardless of host load.
package des

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations, for readability in model code and tests.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a virtual time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts a virtual time to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis converts a virtual time to floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback inside an Engine.
type Event struct {
	at  Time
	seq uint64 // tie-breaker preserving schedule order at equal times
	fn  func()

	index    int // heap index; -1 when popped or cancelled
	canceled bool
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all callbacks run on the goroutine that calls Run.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	fired  int
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() int { return e.fired }

// Pending reports how many events are scheduled but not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently corrupt causality in a model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Run executes events in timestamp order until none remain. It returns the
// final virtual time.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

func (e *Engine) step() {
	ev := heap.Pop(&e.events).(*Event)
	if ev.canceled {
		return
	}
	if ev.at < e.now {
		panic("des: event heap time went backwards")
	}
	e.now = ev.at
	e.fired++
	ev.fn()
}
