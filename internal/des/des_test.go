package des

import (
	"testing"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineEqualTimesPreserveScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order broken: %v", got)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(15, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 25 {
		t.Fatalf("fired = %v, want [10 25]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(5, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunUntil(25)
	if len(got) != 2 || e.Now() != 25 {
		t.Fatalf("after RunUntil(25): fired=%v now=%v", got, e.Now())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("after Run: fired=%v", got)
	}
}

func TestResourceSerializesAndRecordsIntervals(t *testing.T) {
	r := NewResource("link")
	s1, e1, _ := r.reserve(0, 10, 1)
	s2, e2, _ := r.reserve(0, 10, 2)
	if s1 != 0 || e1 != 10 || s2 != 10 || e2 != 20 {
		t.Fatalf("reservations: [%v,%v) [%v,%v)", s1, e1, s2, e2)
	}
	if err := r.ValidateSerialized(); err != nil {
		t.Fatal(err)
	}
	if r.BusyTime() != 20 {
		t.Fatalf("busy = %v, want 20", r.BusyTime())
	}
	if u := r.Utilization(40); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestResourceSlowdown(t *testing.T) {
	r := NewResource("gpu0")
	r.SetSlowdown(1.5)
	_, end, _ := r.reserve(0, 100, 1)
	if end != 150 {
		t.Fatalf("slowed duration end = %v, want 150", end)
	}
}

func TestResourceSlowdownBelowOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetSlowdown(0.5) did not panic")
		}
	}()
	NewResource("x").SetSlowdown(0.5)
}

func TestGraphLinearChain(t *testing.T) {
	g := NewGraph()
	r := NewResource("r")
	a := g.Add("a", r, 10)
	b := g.Add("b", r, 20, a)
	c := g.Add("c", r, 30, b)
	end := g.Run()
	if end != 60 {
		t.Fatalf("makespan = %v, want 60", end)
	}
	if g.End(a) != 10 || g.End(b) != 30 || g.End(c) != 60 {
		t.Fatalf("ends = %v %v %v", g.End(a), g.End(b), g.End(c))
	}
}

func TestGraphResourceContention(t *testing.T) {
	// Two independent tasks on one resource serialize; on two resources they
	// run in parallel.
	g1 := NewGraph()
	r := NewResource("r")
	g1.Add("a", r, 10)
	g1.Add("b", r, 10)
	if end := g1.Run(); end != 20 {
		t.Fatalf("shared resource makespan = %v, want 20", end)
	}

	g2 := NewGraph()
	g2.Add("a", NewResource("r1"), 10)
	g2.Add("b", NewResource("r2"), 10)
	if end := g2.Run(); end != 10 {
		t.Fatalf("separate resources makespan = %v, want 10", end)
	}
}

func TestGraphDiamondDependency(t *testing.T) {
	g := NewGraph()
	src := g.Add("src", nil, 5)
	l := g.Add("l", NewResource("rl"), 10, src)
	rr := g.Add("r", NewResource("rr"), 20, src)
	sink := g.Add("sink", nil, 0, l, rr)
	end := g.Run()
	if end != 25 {
		t.Fatalf("makespan = %v, want 25", end)
	}
	if g.Task(sink).Ready != 25 {
		t.Fatalf("sink ready = %v, want 25", g.Task(sink).Ready)
	}
}

func TestGraphFIFOGrantOrderIsDeterministic(t *testing.T) {
	// A task that becomes ready earlier must be granted the resource first,
	// even if it was added later.
	g := NewGraph()
	r := NewResource("r")
	slow := g.Add("slow-prereq", nil, 100)
	late := g.Add("late", r, 10, slow) // ready at 100
	early := g.Add("early", r, 10)     // ready at 0
	g.Run()
	if g.Task(early).Start != 0 {
		t.Fatalf("early start = %v, want 0", g.Task(early).Start)
	}
	if g.Task(late).Start != 100 {
		t.Fatalf("late start = %v, want 100", g.Task(late).Start)
	}
}

func TestGraphSetEarliest(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", NewResource("r"), 10)
	g.SetEarliest(a, 50)
	g.Run()
	if g.Task(a).Start != 50 {
		t.Fatalf("start = %v, want 50", g.Task(a).Start)
	}
}

func TestGraphCycleDetection(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", nil, 1)
	b := g.Add("b", nil, 1, a)
	g.AddDeps(a, b) // cycle
	defer func() {
		if recover() == nil {
			t.Error("cyclic graph did not panic")
		}
	}()
	g.Run()
}

func TestGraphCriticalPath(t *testing.T) {
	g := NewGraph()
	a := g.Add("a", nil, 10)
	b := g.Add("b", nil, 5)
	c := g.Add("c", nil, 20, a, b) // critical predecessor is a
	g.Run()
	path := g.CriticalPath()
	if len(path) != 2 || path[0] != a || path[1] != c {
		t.Fatalf("critical path = %v, want [%d %d]", path, a, c)
	}
}

func TestGraphRunTwicePanics(t *testing.T) {
	g := NewGraph()
	g.Add("a", nil, 1)
	g.Run()
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	g.Run()
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestPipelineMatchesAlphaBetaModel(t *testing.T) {
	// A K-chunk pipeline over a depth-d chain of links must finish in
	// (d + K - 1) * hop, the closed form behind the paper's Eq. (3).
	const (
		d   = 3
		k   = 8
		hop = Time(100)
	)
	g := NewGraph()
	links := make([]*Resource, d)
	for i := range links {
		links[i] = NewResource("link")
	}
	// task id of chunk c on link l
	ids := make([][]int, d)
	for l := 0; l < d; l++ {
		ids[l] = make([]int, k)
		for c := 0; c < k; c++ {
			var deps []int
			if l > 0 {
				deps = append(deps, ids[l-1][c])
			}
			ids[l][c] = g.Add("hop", links[l], hop, deps...)
		}
	}
	end := g.Run()
	want := Time(d+k-1) * hop
	if end != want {
		t.Fatalf("pipeline makespan = %v, want %v", end, want)
	}
	for _, r := range links {
		if err := r.ValidateSerialized(); err != nil {
			t.Fatal(err)
		}
	}
}
