package des

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// The batched drain (popRun/fireBatch) must be observationally identical to
// the per-event reference (step): same fired order, same clock at every
// callback, same final state, same metric totals — under scheduling from
// callbacks, cancellation of batch-mates, and mid-batch context aborts.

// batchSpec scripts one event deterministically, so the same workload can be
// replayed on independent engines.
type batchSpec struct {
	at     Time  // absolute time for roots, delay for spawned children
	spawns []int // spec ids this event schedules when it fires
	cancel int   // spec id this event cancels when it fires (-1 = none)
	abort  bool  // this event cancels the run's context when it fires
	dead   bool  // cancelled immediately after scheduling
	root   bool  // scheduled up front rather than by a parent
}

// randomBatchWorkload builds a spec set with heavy timestamp collisions: a
// handful of distinct times shared by many events is exactly the shape the
// batched drain exists for.
func randomBatchWorkload(rng *rand.Rand, withAbort bool) []batchSpec {
	n := rng.Intn(120) + 8
	specs := make([]batchSpec, n)
	spawned := make([]bool, n)
	for i := range specs {
		specs[i] = batchSpec{
			at:     Time(rng.Intn(7)), // few distinct times -> big runs
			cancel: -1,
			root:   true,
		}
	}
	// Parents may only spawn higher-numbered specs: acyclic by construction.
	for i := 0; i < n; i++ {
		for _, j := range rng.Perm(n) {
			if j > i && !spawned[j] && rng.Intn(4) == 0 {
				specs[i].spawns = append(specs[i].spawns, j)
				specs[j].root = false
				spawned[j] = true
			}
		}
		if rng.Intn(5) == 0 {
			specs[i].cancel = rng.Intn(n) // may target fired, dead, or same-batch events
		}
		if rng.Intn(10) == 0 {
			specs[i].dead = true
		}
	}
	if withAbort {
		specs[rng.Intn(n)].abort = true
	}
	return specs
}

// trace is what running a workload observes: the exact interleaving the two
// engines must agree on.
type trace struct {
	order []int  // spec ids in fire order
	times []Time // engine clock at each fire
	final Time
	fired int
	err   *CanceledError
}

// playWorkload schedules specs on e and drains it. useSerial selects the
// step-based reference loop over the production batched Run/RunCtx; abort
// events call cancel mid-run.
func playWorkload(e *Engine, specs []batchSpec, ctx context.Context, cancel context.CancelFunc, useSerial bool) trace {
	var tr trace
	handles := make([]Event, len(specs))
	var fire func(id int) func()
	fire = func(id int) func() {
		return func() {
			tr.order = append(tr.order, id)
			tr.times = append(tr.times, e.Now())
			sp := specs[id]
			for _, c := range sp.spawns {
				handles[c] = e.After(specs[c].at, fire(c))
				if specs[c].dead {
					handles[c].Cancel()
				}
			}
			if sp.cancel >= 0 {
				handles[sp.cancel].Cancel() // inert on fired or unscheduled targets
			}
			if sp.abort {
				cancel()
			}
		}
	}
	for id, sp := range specs {
		if sp.root {
			handles[id] = e.At(sp.at, fire(id))
			if sp.dead {
				handles[id].Cancel()
			}
		}
	}
	var final Time
	var err error
	if useSerial {
		final, err = runSerialRef(e, ctx)
	} else {
		final, err = e.RunCtx(ctx)
	}
	tr.final = final
	tr.fired = e.Fired()
	if err != nil {
		var ce *CanceledError
		if !errors.As(err, &ce) {
			panic("non-CanceledError from run")
		}
		tr.err = ce
	}
	return tr
}

// runSerialRef replays the pre-batching engine loop: per-event pop via
// step() with a context checkpoint before each pop. It is the semantic
// reference the batched drain is tested against.
func runSerialRef(e *Engine, ctx context.Context) (Time, error) {
	done := ctx.Done()
	for len(e.events) > 0 {
		if done != nil {
			select {
			case <-done:
				return e.now, &CanceledError{At: e.now, Executed: e.fired,
					Remaining: len(e.events), Cause: context.Cause(ctx)}
			default:
			}
		}
		e.step()
	}
	return e.now, nil
}

func compareTraces(t *testing.T, iter int, serial, batched trace) {
	t.Helper()
	if len(serial.order) != len(batched.order) {
		t.Fatalf("iter %d: fired %d events serially, %d batched", iter, len(serial.order), len(batched.order))
	}
	for i := range serial.order {
		if serial.order[i] != batched.order[i] || serial.times[i] != batched.times[i] {
			t.Fatalf("iter %d: divergence at fire %d: serial (%d @%d) vs batched (%d @%d)",
				iter, i, serial.order[i], serial.times[i], batched.order[i], batched.times[i])
		}
	}
	if serial.final != batched.final || serial.fired != batched.fired {
		t.Fatalf("iter %d: final state diverges: serial (%v, %d) vs batched (%v, %d)",
			iter, serial.final, serial.fired, batched.final, batched.fired)
	}
	if (serial.err == nil) != (batched.err == nil) {
		t.Fatalf("iter %d: error mismatch: serial %v vs batched %v", iter, serial.err, batched.err)
	}
	if serial.err != nil {
		if serial.err.At != batched.err.At || serial.err.Executed != batched.err.Executed ||
			serial.err.Remaining != batched.err.Remaining {
			t.Fatalf("iter %d: CanceledError diverges: serial %+v vs batched %+v",
				iter, serial.err, batched.err)
		}
	}
}

// counterDeltas reports the engine counter movement across run.
func counterDeltas(run func()) [4]int64 {
	s0, f0 := mEventsScheduled.Value(), mEventsFired.Value()
	c0, r0 := mEventsCancelled.Value(), mPoolRecycled.Value()
	run()
	return [4]int64{mEventsScheduled.Value() - s0, mEventsFired.Value() - f0,
		mEventsCancelled.Value() - c0, mPoolRecycled.Value() - r0}
}

func TestBatchedDrainMatchesSerial(t *testing.T) {
	bg := context.Background()
	noop := context.CancelFunc(func() {})
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 300; iter++ {
		specs := randomBatchWorkload(rng, false)

		var serial, batched trace
		prod := NewEngine()
		dSerial := counterDeltas(func() {
			serial = playWorkload(NewEngine(), specs, bg, noop, true)
		})
		dBatched := counterDeltas(func() {
			batched = playWorkload(prod, specs, bg, noop, false)
		})
		compareTraces(t, iter, serial, batched)
		if dSerial != dBatched {
			t.Fatalf("iter %d: metric deltas diverge: serial %v vs batched %v (sched/fired/cancelled/recycled)",
				iter, dSerial, dBatched)
		}
		if prod.Pending() != 0 {
			t.Fatalf("iter %d: %d events left pending after Run", iter, prod.Pending())
		}
	}
}

func TestBatchedRunCtxMatchesSerialUnderCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 300; iter++ {
		specs := randomBatchWorkload(rng, true)

		refCtx, refCancel := context.WithCancel(context.Background())
		ref := NewEngine()
		serial := playWorkload(ref, specs, refCtx, refCancel, true)
		refCancel()

		prodCtx, prodCancel := context.WithCancel(context.Background())
		prod := NewEngine()
		batched := playWorkload(prod, specs, prodCtx, prodCancel, false)
		prodCancel()

		compareTraces(t, iter, serial, batched)
		if serial.err != nil {
			// An aborted batched run pushes the unfired remainder back into
			// the heap; both engines must hold identical pending sets. Drain
			// both with the plain Run and compare final clocks and totals.
			if sf, bf := ref.Run(), prod.Run(); sf != bf {
				t.Fatalf("iter %d: post-abort drain final time diverges: %v vs %v", iter, sf, bf)
			}
			if ref.Fired() != prod.Fired() {
				t.Fatalf("iter %d: post-abort drain fired count diverges: %d vs %d",
					iter, ref.Fired(), prod.Fired())
			}
		}
	}
}

// TestBatchedDrainZeroAllocSteadyState pins the batch path itself: a
// Reserve()d engine draining large equal-timestamp runs allocates nothing,
// from the first run on.
func TestBatchedDrainZeroAllocSteadyState(t *testing.T) {
	const n = 512
	e := NewEngine()
	e.Reserve(n)
	fn := func() {}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < n; i++ {
			e.At(e.Now()+Time(i%3), fn) // 3 distinct times -> runs of ~170
		}
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("batched drain steady state: %v allocs/op, want 0", allocs)
	}
}
