package des

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Regression for the ppm truncation bug: int64(2.3 * 1e6) == 2299999, so a
// 2.3x slowdown of 1ms used to come out one nanosecond short.
func TestSlowdownPPMRounds(t *testing.T) {
	r := NewResource("gpu0")
	r.SetSlowdown(2.3)
	_, end, _ := r.reserve(0, Time(1_000_000), 1)
	if end != 2_300_000 {
		t.Fatalf("2.3x slowdown of 1_000_000ns = %v, want 2_300_000", end)
	}
}

// Property: for any factor expressible in whole ppm, scaling d by the factor
// equals the mathematically rounded product at ppm resolution.
func TestSlowdownRoundingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		ppm := int64(1_000_000 + rng.Intn(9_000_000)) // factor in [1, 10)
		factor := float64(ppm) / 1e6
		r := NewResource("r")
		r.SetSlowdown(factor)
		if r.slowdownPPM != ppm {
			t.Fatalf("factor %v stored as %d ppm, want %d", factor, r.slowdownPPM, ppm)
		}
		d := Time(rng.Intn(1_000_000_000))
		got := r.scaledAt(0, d)
		want := Time(int64(d) * ppm / 1_000_000)
		if got != want {
			t.Fatalf("scaled(%v) at %d ppm = %v, want %v", d, ppm, got, want)
		}
		if math.Abs(float64(got)-float64(d)*factor) > 1 {
			t.Fatalf("scaled(%v) = %v, off from %v by more than 1ns", d, got, float64(d)*factor)
		}
	}
}

func TestSetSlowdownAfterReservationPanics(t *testing.T) {
	r := NewResource("r")
	r.reserve(0, 10, 1)
	defer func() {
		if recover() == nil {
			t.Error("SetSlowdown after a reservation did not panic")
		}
	}()
	r.SetSlowdown(2)
}

func TestSetSlowdownAt(t *testing.T) {
	r := NewResource("link")
	r.SetSlowdownAt(100, 4)
	// Before the breakpoint: full speed.
	_, end, _ := r.reserve(0, 50, 1)
	if end != 50 {
		t.Fatalf("pre-break end = %v, want 50", end)
	}
	// After: 4x slower. freeAt is 50, ready 100 -> start 100 >= break.
	_, end, _ = r.reserve(100, 50, 2)
	if end != 300 {
		t.Fatalf("post-break end = %v, want 300", end)
	}
	// A later breakpoint can restore speed.
	r2 := NewResource("link2")
	r2.SetSlowdownAt(100, 4)
	r2.SetSlowdownAt(200, 1)
	_, end, _ = r2.reserve(250, 50, 1)
	if end != 300 {
		t.Fatalf("restored end = %v, want 300", end)
	}
}

func TestSetSlowdownAtOutOfOrderPanics(t *testing.T) {
	r := NewResource("r")
	r.SetSlowdownAt(100, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order SetSlowdownAt did not panic")
		}
	}()
	r.SetSlowdownAt(50, 3)
}

func TestFailAtRefuses(t *testing.T) {
	r := NewResource("link")
	r.FailAt(100)
	// Starts before the failure: completes, even past the failure time.
	_, end, err := r.reserve(90, 50, 1)
	if err != nil || end != 140 {
		t.Fatalf("in-flight reservation: end=%v err=%v", end, err)
	}
	// Would start after the failure (freeAt=140 >= 100): refused.
	_, _, err = r.reserve(0, 10, 2)
	if err == nil {
		t.Fatal("reservation after failure not refused")
	}
}

func TestGraphRunErrSurfacesFault(t *testing.T) {
	g := NewGraph()
	link := NewResource("ch3")
	link.FailAt(15)
	a := g.Add("send-a", link, 10)
	g.Add("send-b", link, 10, a) // would start at 10 < 15: fine? start = freeAt = 10 < 15 -> ok, ends 20
	c := g.Add("send-c", link, 10, a)
	_ = c // starts at 20 >= 15: refused
	_, err := g.RunErr()
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FaultError", err)
	}
	f := fe.Faults[0]
	if f.Resource != "ch3" || f.Label != "send-c" || f.FailedAt != 15 {
		t.Fatalf("fault = %+v", f)
	}
	if fe.Executed != 2 || fe.Total != 3 {
		t.Fatalf("executed %d of %d, want 2 of 3", fe.Executed, fe.Total)
	}
	if fe.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestGraphRunPanicsOnFault(t *testing.T) {
	g := NewGraph()
	link := NewResource("ch0")
	link.FailAt(0)
	g.Add("send", link, 10)
	defer func() {
		if recover() == nil {
			t.Error("Run over a failed resource did not panic")
		}
	}()
	g.Run()
}

func TestRunErrNoFaultMatchesRun(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		r := NewResource("r")
		a := g.Add("a", r, 10)
		g.Add("b", r, 20, a)
		return g
	}
	g1, g2 := build(), build()
	m1 := g1.Run()
	m2, err := g2.RunErr()
	if err != nil || m1 != m2 {
		t.Fatalf("Run=%v RunErr=%v err=%v", m1, m2, err)
	}
}
