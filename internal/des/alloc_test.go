package des

import (
	"context"
	"testing"

	"ccube/internal/metrics"
)

// The zero-alloc budget for the DES hot path. These tests are the alloc
// regression gate CI's benchmark smoke job runs: steady-state scheduling,
// running, cancelling, and resource acquire/release must not allocate.
const steadyStateAllocBudget = 0

// TestEngineScheduleRunZeroAllocSteadyState proves that once the event pool
// and heap have grown to a workload's high-water mark, a full
// schedule-then-run cycle performs zero heap allocations.
func TestEngineScheduleRunZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	const n = 256
	fn := func() {}
	cycle := func() {
		base := e.Now()
		for i := 0; i < n; i++ {
			e.At(base+Time(i%7), fn)
		}
		e.Run()
	}
	cycle() // warm up: grow pool and heap once
	if allocs := testing.AllocsPerRun(50, cycle); allocs > steadyStateAllocBudget {
		t.Fatalf("steady-state Schedule+Run allocates %.1f/op, budget %d", allocs, steadyStateAllocBudget)
	}
}

// TestEngineReservePreallocatesZeroAlloc proves Reserve removes even the
// first-run growth: a reserved engine never allocates while scheduling up to
// the reserved count.
func TestEngineReservePreallocatesZeroAlloc(t *testing.T) {
	e := NewEngine()
	const n = 128
	e.Reserve(n)
	fn := func() {}
	cycle := func() {
		base := e.Now()
		for i := 0; i < n; i++ {
			e.At(base+Time(i), fn)
		}
		e.Run()
	}
	if allocs := testing.AllocsPerRun(20, cycle); allocs > steadyStateAllocBudget {
		t.Fatalf("reserved engine allocates %.1f/op, budget %d", allocs, steadyStateAllocBudget)
	}
}

// TestEngineCancelZeroAllocSteadyState covers the cancel path: cancelled
// events are dropped at pop time and recycled without allocating.
func TestEngineCancelZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	const n = 64
	fn := func() {}
	cycle := func() {
		base := e.Now()
		for i := 0; i < n; i++ {
			h := e.At(base+Time(i), fn)
			if i%2 == 0 {
				h.Cancel()
			}
		}
		e.Run()
	}
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs > steadyStateAllocBudget {
		t.Fatalf("steady-state cancel cycle allocates %.1f/op, budget %d", allocs, steadyStateAllocBudget)
	}
}

// TestResourceReserveResetZeroAllocSteadyState covers resource
// acquire/release: after the interval log has grown once, reserve+Reset
// cycles are allocation-free.
func TestResourceReserveResetZeroAllocSteadyState(t *testing.T) {
	r := NewResource("link")
	const n = 128
	cycle := func() {
		for i := 0; i < n; i++ {
			if _, _, err := r.reserve(Time(i), 10, i); err != nil {
				t.Fatal(err)
			}
		}
		r.Reset()
	}
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs > steadyStateAllocBudget {
		t.Fatalf("steady-state reserve/Reset allocates %.1f/op, budget %d", allocs, steadyStateAllocBudget)
	}
}

// TestResourcePreallocZeroAllocFirstRun proves Prealloc removes the first
// run's growth allocations too.
func TestResourcePreallocZeroAllocFirstRun(t *testing.T) {
	r := NewResource("link")
	const n = 64
	r.Prealloc(n)
	cycle := func() {
		for i := 0; i < n; i++ {
			if _, _, err := r.reserve(Time(i), 10, i); err != nil {
				t.Fatal(err)
			}
		}
		r.Reset()
	}
	if allocs := testing.AllocsPerRun(20, cycle); allocs > steadyStateAllocBudget {
		t.Fatalf("preallocated resource allocates %.1f/op, budget %d", allocs, steadyStateAllocBudget)
	}
}

// TestEngineRunCtxZeroAllocSteadyState extends the alloc gate to the
// cancellation checkpoint: RunCtx over a live (cancellable, never
// cancelled) context performs the per-pop Done check on every event and
// must still be allocation-free in steady state.
func TestEngineRunCtxZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 256
	fn := func() {}
	cycle := func() {
		base := e.Now()
		for i := 0; i < n; i++ {
			e.At(base+Time(i%7), fn)
		}
		if _, err := e.RunCtx(ctx); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm up: grow pool and heap once
	if allocs := testing.AllocsPerRun(50, cycle); allocs > steadyStateAllocBudget {
		t.Fatalf("steady-state RunCtx allocates %.1f/op, budget %d (context check must be free)", allocs, steadyStateAllocBudget)
	}
}

// TestGraphRunCtxErrZeroExtraAlloc pins that the task-graph checkpoint adds
// no per-task allocations: an identical graph run via RunCtxErr with a live
// context allocates exactly as much as RunErr (construction allocations
// only, measured as the delta between the two paths being zero).
func TestGraphRunCtxErrZeroExtraAlloc(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 128
	build := func() *Graph {
		g := NewGraph()
		g.Reserve(n)
		prev := -1
		for i := 0; i < n; i++ {
			if prev < 0 {
				prev = g.Add("t", nil, 1)
			} else {
				prev = g.Add("t", nil, 1, prev)
			}
		}
		return g
	}
	plain := testing.AllocsPerRun(20, func() {
		if _, err := build().RunErr(); err != nil {
			t.Fatal(err)
		}
	})
	withCtx := testing.AllocsPerRun(20, func() {
		if _, err := build().RunCtxErr(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if withCtx > plain {
		t.Fatalf("RunCtxErr allocates %.1f/op vs RunErr %.1f/op; the context check must add 0", withCtx, plain)
	}
}

// allocCycle is the engine+resource workload the metrics-gating tests below
// share: schedule/run a batch of events (half cancelled) and reserve/Reset a
// resource — every instrumented hot path in one loop.
func allocCycle(t *testing.T, e *Engine, r *Resource) {
	t.Helper()
	const n = 128
	fn := func() {}
	base := e.Now()
	for i := 0; i < n; i++ {
		h := e.At(base+Time(i%7), fn)
		if i%2 == 0 {
			h.Cancel()
		}
	}
	e.Run()
	for i := 0; i < n; i++ {
		if _, _, err := r.reserve(Time(i), 10, i); err != nil {
			t.Fatal(err)
		}
	}
	r.Reset()
}

// TestMetricsRegisteredDisabledZeroAlloc is the observability half of the
// alloc gate: the des instruments are registered at package init, so this
// asserts explicitly that carrying them — disabled, the default — keeps the
// hot path at zero allocations.
func TestMetricsRegisteredDisabledZeroAlloc(t *testing.T) {
	if metrics.Default.Enabled() {
		t.Fatal("metrics.Default unexpectedly enabled at test start")
	}
	e := NewEngine()
	r := NewResource("link")
	allocCycle(t, e, r) // warm up: grow pool, heap, and interval log once
	allocs := testing.AllocsPerRun(50, func() { allocCycle(t, e, r) })
	if allocs > steadyStateAllocBudget {
		t.Fatalf("metrics registered-but-disabled: %.1f allocs/op, budget %d",
			allocs, steadyStateAllocBudget)
	}
}

// TestMetricsEnabledZeroAlloc proves the stronger property: even with
// collection on, the counters are preallocated atomics, so the steady-state
// hot path still does not allocate.
func TestMetricsEnabledZeroAlloc(t *testing.T) {
	metrics.Default.Enable()
	t.Cleanup(func() {
		metrics.Default.Disable()
		metrics.Default.Reset()
	})
	e := NewEngine()
	r := NewResource("link")
	allocCycle(t, e, r)
	allocs := testing.AllocsPerRun(50, func() { allocCycle(t, e, r) })
	if allocs > steadyStateAllocBudget {
		t.Fatalf("metrics enabled: %.1f allocs/op, budget %d", allocs, steadyStateAllocBudget)
	}
	if mEventsScheduled.Value() == 0 || mResourceBusyNS.Value() == 0 {
		t.Fatal("enabled metrics recorded nothing — instrumentation not wired")
	}
}

// TestEventHandleSurvivesRecycling pins the Cancel-after-fire contract: a
// handle to a fired event must be inert even after the engine reuses the
// event's storage for a new event.
func TestEventHandleSurvivesRecycling(t *testing.T) {
	e := NewEngine()
	firstRan := false
	stale := e.At(1, func() { firstRan = true })
	e.Run()
	if !firstRan {
		t.Fatal("first event did not run")
	}
	if stale.Pending() {
		t.Fatal("fired event still reports Pending")
	}
	// The pool guarantees the next event reuses the fired event's record.
	secondRan := false
	fresh := e.At(e.Now()+1, func() { secondRan = true })
	if fresh.ev != stale.ev {
		t.Fatalf("pool did not recycle the fired event's record")
	}
	stale.Cancel() // must NOT cancel the unrelated second event
	e.Run()
	if !secondRan {
		t.Fatal("stale Cancel killed a recycled event — generation guard broken")
	}
	if stale.At() != 1 {
		t.Fatalf("stale handle At() = %v, want 1", stale.At())
	}
}

// TestCancelledEventRecycledAtPop asserts the lazy-drop path returns
// cancelled events to the pool when their fire time arrives, instead of
// leaking them.
func TestCancelledEventRecycledAtPop(t *testing.T) {
	e := NewEngine()
	h := e.At(5, func() { t.Fatal("cancelled event fired") })
	h.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("pending = %d before pop, want 1 (lazy cancellation)", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after run, want 0", e.Pending())
	}
	if len(e.pool) != 1 {
		t.Fatalf("pool = %d after run, want 1 recycled event", len(e.pool))
	}
	if e.Fired() != 0 {
		t.Fatalf("fired = %d, want 0: cancelled events must not count", e.Fired())
	}
	if e.Now() != 0 {
		t.Fatalf("now = %v, want 0: dropping a cancelled event must not advance time", e.Now())
	}
}

// TestZeroEventHandleIsInert guards the documented zero-value behavior.
func TestZeroEventHandleIsInert(t *testing.T) {
	var h Event
	h.Cancel() // must not panic
	if h.Pending() {
		t.Fatal("zero handle reports Pending")
	}
	if h.At() != 0 {
		t.Fatalf("zero handle At() = %v", h.At())
	}
}
