package des

import (
	"context"
	"fmt"
)

// CanceledError reports that a run stopped at a cancellation checkpoint
// before draining its work: the caller's context was cancelled (or its
// deadline expired) mid-simulation. The engine checks the context at
// event-pop granularity and the task graph at task-pop granularity, so the
// abort is prompt — at most one event/task executes after cancellation —
// and deterministic with respect to virtual time: At records how far the
// simulated clock got.
//
// CanceledError unwraps to the context error, so callers can test
// errors.Is(err, context.DeadlineExceeded) as well as errors.As into the
// typed form.
type CanceledError struct {
	At        Time  // virtual time reached when cancellation was observed
	Executed  int   // events fired / tasks completed before the stop
	Remaining int   // events / tasks left unexecuted
	Cause     error // context.Canceled or context.DeadlineExceeded
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("des: run canceled at %v (%d executed, %d remaining): %v",
		e.At, e.Executed, e.Remaining, e.Cause)
}

// Unwrap exposes the context error for errors.Is chains.
func (e *CanceledError) Unwrap() error { return e.Cause }

// RunCtx executes events in timestamp order until none remain or ctx is
// cancelled, whichever comes first. The context is checked before every
// event — including the events inside a drained equal-timestamp batch — so
// a cancelled run stops without firing another callback and returns a
// *CanceledError recording the virtual time reached. Events still pending
// at cancellation stay in the heap (a mid-batch abort pushes the unfired
// remainder back), so the engine remains usable: a later Run drains them,
// which keeps cancelled engines safe to recycle.
//
// The checkpoint is a non-blocking channel receive — no allocation, no
// syscall — so RunCtx preserves the engine's zero-alloc steady state
// (pinned by the alloc gate in alloc_test.go). A context that can never be
// cancelled (Done() == nil, e.g. context.Background) degrades to the plain
// Run loop with no per-event cost at all.
func (e *Engine) RunCtx(ctx context.Context) (Time, error) {
	done := ctx.Done()
	if done == nil {
		//lint:ignore ctx-propagation this IS RunCtx: a nil Done degrades to the uncancellable fast path by design
		return e.Run(), nil
	}
	for len(e.events) > 0 {
		// fireBatch checks done before its first element, so the pre-pop
		// checkpoint the serial loop had is preserved.
		e.popRun()
		if _, err := e.fireBatch(ctx, done); err != nil {
			return e.now, err
		}
	}
	return e.now, nil
}

// RunCtxErr executes the graph like RunErr, additionally aborting with a
// *CanceledError when ctx is cancelled mid-run. The cancellation
// checkpoint sits at task-pop granularity: it is checked each time the
// scheduler would grant the next ready task, so at most the task already
// holding its resource completes after cancellation. A graph aborted by
// cancellation counts as ran — build a fresh graph to retry.
func (g *Graph) RunCtxErr(ctx context.Context) (Time, error) {
	return g.runErr(ctx)
}

// RunCtx is RunCtxErr for callers that treat faults as fatal: resource
// refusals still panic (as Run does), but cancellation returns the typed
// error. It exists so cancellation-aware callers are not forced onto the
// fault-handling path.
func (g *Graph) RunCtx(ctx context.Context) (Time, error) {
	m, err := g.runErr(ctx)
	if err != nil {
		if _, canceled := err.(*CanceledError); canceled {
			return m, err
		}
		panic(err.Error())
	}
	return m, nil
}
