// Package bench runs the simulator's engine micro-benchmarks in-process, so
// ccube-bench can record machine-readable performance numbers (wall time,
// allocations) next to the figures they time. The benchmark bodies mirror
// internal/des's *_test benchmarks over the exported API; the alloc budgets
// themselves are enforced both here (CheckBudgets, run by ccube-bench and CI)
// and by the des/server packages' AllocsPerRun tests.
package bench

import (
	"fmt"
	"testing"

	"ccube/internal/collective"
	"ccube/internal/des"
	"ccube/internal/report"
	"ccube/internal/server"
	"ccube/internal/topology"
)

// Result is one micro-benchmark outcome in BENCH_ccube.json form.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func run(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchmark pairs a bench body with the name it reports under, so the bench
// list and the budget table stay checkable against each other (bench_test.go
// fails if a bench is added without a budget decision).
type benchmark struct {
	name string
	fn   func(b *testing.B)
}

// benchmarks returns the engine micro-benchmark suite.
func benchmarks() []benchmark {
	return []benchmark{
		{"EngineScheduleRun1024", func(b *testing.B) {
			e := des.NewEngine()
			const n = 1024
			e.Reserve(n)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := e.Now()
				for j := 0; j < n; j++ {
					e.At(base+des.Time(j%13), fn)
				}
				e.Run()
			}
		}},
		{"EngineBatchDrain1024", func(b *testing.B) {
			// Batched-drain stress: 1024 events on only 4 distinct
			// timestamps, so Run drains runs of ~256 equal-time events per
			// batch — the shape the equal-timestamp drain is built for
			// (chunked collectives fire whole waves at one simulated time).
			e := des.NewEngine()
			const n = 1024
			e.Reserve(n)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := e.Now()
				for j := 0; j < n; j++ {
					e.At(base+des.Time(j%4), fn)
				}
				e.Run()
			}
		}},
		{"EngineScheduleCancelRun1024", func(b *testing.B) {
			e := des.NewEngine()
			const n = 1024
			e.Reserve(n)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := e.Now()
				for j := 0; j < n; j++ {
					h := e.At(base+des.Time(j%13), fn)
					if j%2 == 0 {
						h.Cancel()
					}
				}
				e.Run()
			}
		}},
		{"GraphPipeline8x256", func(b *testing.B) {
			// Steady-state graph reuse: the graph, its resources, and every
			// backing array are built once; each op Resets and re-Adds the
			// 8×256 pipeline. This is the serve-path shape — ccube-serve
			// replays structurally identical graphs per request — so the
			// per-op cost must be the task work, not allocator traffic.
			const d, k = 8, 256
			g := des.NewGraph()
			g.Reserve(d * k)
			g.ReserveEdges((d - 1) * k)
			links := make([]*des.Resource, d)
			for l := range links {
				links[l] = des.NewResource("link")
				links[l].Prealloc(k)
			}
			prev := make([]int, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Reset()
				for _, r := range links {
					r.Reset()
				}
				for l := 0; l < d; l++ {
					for c := 0; c < k; c++ {
						if l == 0 {
							prev[c] = g.Add("hop", links[l], 100)
						} else {
							prev[c] = g.Add("hop", links[l], 100, prev[c])
						}
					}
				}
				g.Run()
			}
		}},
		{"ScheduleCacheHit", func(b *testing.B) {
			// Warm-path lookup: the key must build and compare without
			// heap traffic, or the per-request fast path in ccube-serve
			// allocates on every plan/simulate call. Uses a private cache
			// so the shared DefaultCache counters stay untouched.
			c := collective.NewCache()
			cfg := collective.Config{
				Graph:     topology.DGX1(topology.DefaultDGX1Config()),
				Algorithm: collective.AlgDoubleTreeOverlap,
				Bytes:     16 << 20,
			}
			if _, err := c.Build(cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Build(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ServeEncodePlan", func(b *testing.B) {
			r := PlanFixture()
			buf := r.AppendJSON(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = r.AppendJSON(buf[:0])
			}
			sinkLen = len(buf)
		}},
		{"ServeEncodeSimulate", func(b *testing.B) {
			r := SimulateFixture()
			buf := r.AppendJSON(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = r.AppendJSON(buf[:0])
			}
			sinkLen = len(buf)
		}},
	}
}

// sinkLen keeps the encoder benchmarks' output alive past the loop.
var sinkLen int

// PlanFixture is a representative /v1/plan response — a full candidate
// ranking plus its rendered table — for the encoder benchmarks and tests.
func PlanFixture() *server.PlanResponse {
	algorithms := []string{
		"ring", "tree", "tree-overlap", "double-tree",
		"double-tree-overlap", "halving-doubling",
	}
	t := report.New("AllReduce plan: dgx1, 16M", "algorithm", "total", "turnaround", "in-order")
	cands := make([]server.PlanCandidate, 0, len(algorithms))
	for i, alg := range algorithms {
		c := server.PlanCandidate{
			Algorithm:    alg,
			TotalNS:      int64(1_200_000 + i*137_000),
			Total:        fmt.Sprintf("%.3fms", float64(1_200_000+i*137_000)/1e6),
			TurnaroundNS: int64(950_000 + i*113_000),
			Turnaround:   fmt.Sprintf("%.3fms", float64(950_000+i*113_000)/1e6),
			InOrder:      i%2 == 0,
		}
		cands = append(cands, c)
		t.AddRow(c.Algorithm, c.Total, c.Turnaround, fmt.Sprintf("%v", c.InOrder))
	}
	t.AddNote("objective: latency; lower total is better")
	return &server.PlanResponse{
		Topology:   "dgx1",
		Bytes:      16 << 20,
		Objective:  "latency",
		Best:       cands[0],
		Candidates: cands,
		Table:      t,
	}
}

// SimulateFixture is a representative /v1/simulate response — channel
// utilizations with "a->b (kind)" names and a timing table.
func SimulateFixture() *server.SimulateResponse {
	t := report.New("AllReduce on dgx1: ccube, 16M", "metric", "value")
	channels := make([]server.ChannelUse, 0, 8)
	for i := 0; i < 8; i++ {
		channels = append(channels, server.ChannelUse{
			Channel:     fmt.Sprintf("gpu%d->gpu%d (nvlink)", i, (i+1)%8),
			Utilization: float64(8-i) / 9.0,
		})
	}
	t.AddRow("total", "1.844ms")
	t.AddRow("turnaround", "1.613ms")
	t.AddRow("bandwidth", "9.1GB/s")
	t.AddNote("in-order delivery: true")
	return &server.SimulateResponse{
		Topology:      "dgx1",
		Algorithm:     "ccube",
		Bytes:         16 << 20,
		Participants:  8,
		Chunks:        16,
		TotalNS:       1_844_214,
		Total:         "1.844ms",
		TurnaroundNS:  1_613_007,
		Turnaround:    "1.613ms",
		BandwidthGBps: 9.0972,
		InOrder:       true,
		Channels:      channels,
		Table:         t,
	}
}

// Engine runs the DES and serve-path micro-benchmarks and returns their
// results. Every bench carries an allocs/op budget (Budgets); CI's bench job
// fails via CheckBudgets if any regresses.
func Engine() []Result {
	var out []Result
	for _, bm := range benchmarks() {
		out = append(out, run(bm.name, bm.fn))
	}
	return out
}

// SteadyStateBudget is the default allocs/op ceiling: the engine and encoder
// steady states must not allocate at all.
const SteadyStateBudget = 0

// Budgets maps each benchmark to its allocs/op ceiling. Benches absent from
// the map get SteadyStateBudget (zero). GraphPipeline8x256 re-Adds 2048
// tasks per op through the variadic Add path; its small non-zero budget
// covers the handful of variadic dep slices the compiler heap-allocates, and
// pins that re-populating a Reset graph never scales allocations with task
// count again (the seed built the whole graph per op: 109 allocs, ~768KB).
var Budgets = map[string]int64{
	"GraphPipeline8x256": 9,
}

// CheckBudgets returns a description of every bench exceeding its allocs/op
// budget (empty when all pass).
func CheckBudgets(results []Result) []string {
	var over []string
	for _, r := range results {
		budget, ok := Budgets[r.Name]
		if !ok {
			budget = SteadyStateBudget
		}
		if r.AllocsPerOp > budget {
			over = append(over, fmt.Sprintf("%s: %d allocs/op > budget %d", r.Name, r.AllocsPerOp, budget))
		}
	}
	return over
}
