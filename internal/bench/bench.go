// Package bench runs the simulator's engine micro-benchmarks in-process, so
// ccube-bench can record machine-readable performance numbers (wall time,
// allocations) next to the figures they time. The benchmark bodies mirror
// internal/des's *_test benchmarks over the exported API; the alloc budgets
// themselves are enforced by the des package's AllocsPerRun tests.
package bench

import (
	"testing"

	"ccube/internal/collective"
	"ccube/internal/des"
	"ccube/internal/topology"
)

// Result is one micro-benchmark outcome in BENCH_ccube.json form.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func run(name string, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	return Result{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// Engine runs the DES micro-benchmarks and returns their results. The
// schedule/run and cancel benches must report 0 allocs/op — the engine's
// zero-alloc steady-state contract; CI's bench job fails if they regress.
func Engine() []Result {
	return []Result{
		run("EngineScheduleRun1024", func(b *testing.B) {
			e := des.NewEngine()
			const n = 1024
			e.Reserve(n)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := e.Now()
				for j := 0; j < n; j++ {
					e.At(base+des.Time(j%13), fn)
				}
				e.Run()
			}
		}),
		run("EngineScheduleCancelRun1024", func(b *testing.B) {
			e := des.NewEngine()
			const n = 1024
			e.Reserve(n)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := e.Now()
				for j := 0; j < n; j++ {
					h := e.At(base+des.Time(j%13), fn)
					if j%2 == 0 {
						h.Cancel()
					}
				}
				e.Run()
			}
		}),
		run("GraphPipeline8x256", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := des.NewGraph()
				const d, k = 8, 256
				links := make([]*des.Resource, d)
				for l := range links {
					links[l] = des.NewResource("link")
				}
				prev := make([]int, k)
				for l := 0; l < d; l++ {
					for c := 0; c < k; c++ {
						if l == 0 {
							prev[c] = g.Add("hop", links[l], 100)
						} else {
							prev[c] = g.Add("hop", links[l], 100, prev[c])
						}
					}
				}
				g.Run()
			}
		}),
		run("ScheduleCacheHit", func(b *testing.B) {
			// Warm-path lookup: the key must build and compare without
			// heap traffic, or the per-request fast path in ccube-serve
			// allocates on every plan/simulate call. Uses a private cache
			// so the shared DefaultCache counters stay untouched.
			c := collective.NewCache()
			cfg := collective.Config{
				Graph:     topology.DGX1(topology.DefaultDGX1Config()),
				Algorithm: collective.AlgDoubleTreeOverlap,
				Bytes:     16 << 20,
			}
			if _, err := c.Build(cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Build(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}),
	}
}

// SteadyStateBudget is the allocs/op ceiling for the steady-state engine
// benches (everything except the build-inclusive graph pipeline).
const SteadyStateBudget = 0

// CheckBudgets returns the names of steady-state benches exceeding
// SteadyStateBudget.
func CheckBudgets(results []Result) []string {
	var over []string
	for _, r := range results {
		if r.Name == "GraphPipeline8x256" {
			continue // builds its graph per op by design
		}
		if r.AllocsPerOp > SteadyStateBudget {
			over = append(over, r.Name)
		}
	}
	return over
}
