package bench

import (
	"encoding/json"
	"testing"

	"ccube/internal/des"
)

// TestBudgetsCoverKnownBenches keeps the budget table honest: every override
// must name a real benchmark, so a rename can't silently un-gate a bench
// (anything unnamed falls back to the zero-alloc default).
func TestBudgetsCoverKnownBenches(t *testing.T) {
	names := map[string]bool{}
	for _, bm := range benchmarks() {
		names[bm.name] = true
	}
	for name := range Budgets {
		if !names[name] {
			t.Errorf("Budgets entry %q does not match any benchmark", name)
		}
	}
}

// TestEncoderBenchFixturesAllocFree pins the exact bodies the ServeEncode*
// benches time: once the buffer is warm, encoding a full plan or simulate
// response must not allocate.
func TestEncoderBenchFixturesAllocFree(t *testing.T) {
	plan := PlanFixture()
	sim := SimulateFixture()
	buf := sim.AppendJSON(plan.AppendJSON(nil))
	if allocs := testing.AllocsPerRun(50, func() {
		buf = plan.AppendJSON(buf[:0])
	}); allocs != 0 {
		t.Errorf("plan encode: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		buf = sim.AppendJSON(buf[:0])
	}); allocs != 0 {
		t.Errorf("simulate encode: %v allocs/op, want 0", allocs)
	}
}

// TestEncoderBenchFixturesGolden re-checks the fixtures against encoding/json
// so the benchmarks can never time an encoder that has drifted off the wire
// format (the server package pins real responses; this pins the synthetic
// ones the benches use).
func TestEncoderBenchFixturesGolden(t *testing.T) {
	for _, v := range []interface {
		AppendJSON([]byte) []byte
	}{PlanFixture(), SimulateFixture()} {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.AppendJSON(nil); string(got) != string(want) {
			t.Errorf("fixture encoder diverges:\n got %s\nwant %s", got, want)
		}
	}
}

// TestGraphPipelineReuseWithinBudget pins the reworked GraphPipeline8x256
// shape: re-populating a Reset graph costs at most the budgeted handful of
// variadic dep slices, never the ~109 allocs/op of building the graph,
// resources, and adjacency from scratch each op.
func TestGraphPipelineReuseWithinBudget(t *testing.T) {
	const d, k = 8, 256
	g := des.NewGraph()
	g.Reserve(d * k)
	g.ReserveEdges((d - 1) * k)
	links := make([]*des.Resource, d)
	for l := range links {
		links[l] = des.NewResource("link")
		links[l].Prealloc(k)
	}
	prev := make([]int, k)
	op := func() {
		g.Reset()
		for _, r := range links {
			r.Reset()
		}
		for l := 0; l < d; l++ {
			for c := 0; c < k; c++ {
				if l == 0 {
					prev[c] = g.Add("hop", links[l], 100)
				} else {
					prev[c] = g.Add("hop", links[l], 100, prev[c])
				}
			}
		}
		g.Run()
	}
	op() // warm the backing arrays
	budget := Budgets["GraphPipeline8x256"]
	if allocs := testing.AllocsPerRun(5, op); int64(allocs) > budget {
		t.Errorf("graph reuse op: %v allocs/op, budget %d", allocs, budget)
	}
	// The result must still be the full pipeline: 2048 tasks, correct makespan
	// (8 serial hops of 100 on the critical path, 256 chains sharing each link
	// serially: last chain ends at (256+7)*100).
	if g.NumTasks() != d*k {
		t.Fatalf("NumTasks = %d, want %d", g.NumTasks(), d*k)
	}
	if want := des.Time((k + d - 1) * 100); g.Makespan() != want {
		t.Errorf("makespan = %v, want %v", g.Makespan(), want)
	}
}

// TestEngineBatchDrainShape runs one op of the batch-drain bench and checks
// the engine actually fires every event (the bench would otherwise happily
// time a no-op).
func TestEngineBatchDrainShape(t *testing.T) {
	e := des.NewEngine()
	const n = 1024
	e.Reserve(n)
	fired := 0
	fn := func() { fired++ }
	base := e.Now()
	for j := 0; j < n; j++ {
		e.At(base+des.Time(j%4), fn)
	}
	e.Run()
	if fired != n {
		t.Errorf("fired %d events, want %d", fired, n)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after Run", e.Pending())
	}
}
