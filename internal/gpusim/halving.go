package gpusim

import (
	"fmt"
	"math/bits"
	"sync"

	"ccube/internal/chunk"
	"ccube/internal/p2psync"
)

// AllReduceHalvingDoubling runs recursive halving-doubling as one
// persistent kernel per GPU, exchanging blocks with XOR partners through
// mailboxes — on the DGX-1 every XOR-distance pair has a direct NVLink, so
// the emulation mirrors a feasible kernel placement. P must be a power of
// two; the message splits into exactly P chunks.
func AllReduceHalvingDoubling(inputs [][]float32, mailboxDepth int) (*Result, error) {
	p := len(inputs)
	if p < 2 || p&(p-1) != 0 {
		return nil, fmt.Errorf("gpusim: halving-doubling over %d GPUs (need power of two)", p)
	}
	elems := len(inputs[0])
	for g, in := range inputs {
		if len(in) != elems {
			return nil, fmt.Errorf("gpusim: GPU %d has %d elements, want %d", g, len(in), elems)
		}
	}
	if elems < p {
		return nil, fmt.Errorf("gpusim: %d elements for %d chunks", elems, p)
	}
	if mailboxDepth == 0 {
		mailboxDepth = 2
	}
	d := bits.TrailingZeros(uint(p))

	part := chunk.Split(int64(elems), p)
	res := &Result{
		Buffers:      make([][]float32, p),
		ArrivalOrder: make([][]int, p),
	}
	for g := range res.Buffers {
		res.Buffers[g] = append([]float32(nil), inputs[g]...)
	}
	for g := range res.ArrivalOrder {
		res.ArrivalOrder[g] = make([]int, 0, p) // prealloc: at most one arrival per recursive-doubling round chunk
	}
	slice := func(g, c int) []float32 {
		lo := part.Offsets[c]
		return res.Buffers[g][lo : lo+part.Sizes[c]]
	}

	// inbox[r][s]: what r receives in exchange step s (steps 0..2d-1: first
	// d are reduce-scatter, last d are all-gather). Both partners send their
	// whole block before receiving, so each step's mailbox must hold a full
	// block (p >> (s+1) chunks for RS step s, mirrored for AG) or the
	// symmetric sends deadlock.
	blockChunks := func(step int) int {
		s := step
		if step >= d {
			s = 2*d - 1 - step
		}
		n := p >> (s + 1)
		if n < mailboxDepth {
			n = mailboxDepth
		}
		return n
	}
	inbox := make([][]*p2psync.Mailbox, p)
	for r := range inbox {
		inbox[r] = make([]*p2psync.Mailbox, 2*d)
		for s := range inbox[r] {
			inbox[r][s] = p2psync.NewMailbox(blockChunks(s))
		}
	}

	blockOf := func(r, s int) (int, int) {
		size := p >> s
		lo := (r / size) * size
		return lo, lo + size
	}

	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		r := r
		wg.Add(1)
		go func() { // halving-doubling kernel for GPU r
			defer wg.Done()
			// Recursive halving reduce-scatter.
			for s := 0; s < d; s++ {
				partner := r ^ (p >> (s + 1))
				sendLo, sendHi := blockOf(partner, s+1)
				for c := sendLo; c < sendHi; c++ {
					inbox[partner][s].Send(slice(r, c))
				}
				recvLo, recvHi := blockOf(r, s+1)
				for c := recvLo; c < recvHi; c++ {
					dst := slice(r, c)
					inbox[r][s].Recv(func(data []float32) {
						for i := range dst {
							dst[i] += data[i]
						}
					})
				}
			}
			res.ArrivalOrder[r] = append(res.ArrivalOrder[r], r)
			// Recursive doubling all-gather.
			for s := d - 1; s >= 0; s-- {
				partner := r ^ (p >> (s + 1))
				step := 2*d - 1 - s
				sendLo, sendHi := blockOf(r, s+1)
				for c := sendLo; c < sendHi; c++ {
					inbox[partner][step].Send(slice(r, c))
				}
				recvLo, recvHi := blockOf(partner, s+1)
				for c := recvLo; c < recvHi; c++ {
					dst := slice(r, c)
					inbox[r][step].Recv(func(data []float32) {
						copy(dst, data)
					})
					res.ArrivalOrder[r] = append(res.ArrivalOrder[r], c)
				}
			}
		}()
	}
	wg.Wait()
	return res, nil
}
