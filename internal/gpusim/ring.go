package gpusim

import (
	"fmt"
	"sync"

	"ccube/internal/chunk"
	"ccube/internal/p2psync"
)

// AllReduceRing runs the ring algorithm (paper "R") as one persistent kernel
// per GPU: P-1 reduce-scatter steps then P-1 all-gather steps, neighbors
// linked by mailboxes. It exists both as a baseline for the emulation tests
// and to demonstrate the ring's lack of the in-order property: the recorded
// ArrivalOrder differs per GPU, which is why ring cannot feed the gradient
// queue (Observation #3).
func AllReduceRing(inputs [][]float32, mailboxDepth int) (*Result, error) {
	p := len(inputs)
	if p < 2 {
		return nil, fmt.Errorf("gpusim: ring over %d GPUs", p)
	}
	elems := len(inputs[0])
	for g, in := range inputs {
		if len(in) != elems {
			return nil, fmt.Errorf("gpusim: GPU %d has %d elements, want %d", g, len(in), elems)
		}
	}
	if elems < p {
		return nil, fmt.Errorf("gpusim: %d elements for %d ring chunks", elems, p)
	}
	if mailboxDepth == 0 {
		mailboxDepth = 2
	}

	part := chunk.Split(int64(elems), p)
	res := &Result{
		Buffers:      make([][]float32, p),
		ArrivalOrder: make([][]int, p),
	}
	for g := range res.Buffers {
		res.Buffers[g] = append([]float32(nil), inputs[g]...)
	}
	for g := range res.ArrivalOrder {
		res.ArrivalOrder[g] = make([]int, 0, p) // prealloc: at most one arrival per ring chunk
	}
	slice := func(g, c int) []float32 {
		lo := part.Offsets[c]
		return res.Buffers[g][lo : lo+part.Sizes[c]]
	}
	mod := func(x int) int { return ((x % p) + p) % p }

	// inbox[i] carries traffic from GPU i-1 to GPU i.
	inbox := make([]*p2psync.Mailbox, p)
	for i := range inbox {
		inbox[i] = p2psync.NewMailbox(mailboxDepth)
	}

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		i := i
		wg.Add(1)
		go func() { // ring kernel for GPU i
			defer wg.Done()
			// Reduce-scatter: at step s, send chunk (i-s), accumulate chunk
			// (i-1-s) from the left neighbor.
			for s := 0; s < p-1; s++ {
				inbox[mod(i+1)].Send(slice(i, mod(i-s)))
				dst := slice(i, mod(i-1-s))
				inbox[i].Recv(func(data []float32) {
					for j := range dst {
						dst[j] += data[j]
					}
				})
			}
			// GPU i now owns the fully reduced chunk (i+1) mod p.
			res.ArrivalOrder[i] = append(res.ArrivalOrder[i], mod(i+1))
			// All-gather: at step s, send chunk (i+1-s), overwrite chunk
			// (i-s) from the left neighbor.
			for s := 0; s < p-1; s++ {
				inbox[mod(i+1)].Send(slice(i, mod(i+1-s)))
				c := mod(i - s)
				dst := slice(i, c)
				inbox[i].Recv(func(data []float32) {
					copy(dst, data)
				})
				res.ArrivalOrder[i] = append(res.ArrivalOrder[i], c)
			}
		}()
	}
	wg.Wait()
	return res, nil
}
