package gpusim

import (
	"math/rand"
	"testing"
)

func TestHalvingDoublingEmulationCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, p := range []int{2, 4, 8, 16, 32} {
		inputs, want := randInputs(rng, p, 777)
		res, err := AllReduceHalvingDoubling(inputs, 0)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		checkSum(t, res, want)
	}
}

func TestHalvingDoublingEmulationRejectsNonPowerOfTwo(t *testing.T) {
	inputs := make([][]float32, 6)
	for i := range inputs {
		inputs[i] = make([]float32, 64)
	}
	if _, err := AllReduceHalvingDoubling(inputs, 0); err == nil {
		t.Fatal("P=6 accepted")
	}
}

func TestHalvingDoublingEmulationFirstChunkIsOwn(t *testing.T) {
	// After reduce-scatter, rank r completes its own subcube chunk first —
	// a different chunk per rank (not in-order; no gradient queuing).
	rng := rand.New(rand.NewSource(82))
	inputs, _ := randInputs(rng, 8, 256)
	res, err := AllReduceHalvingDoubling(inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r, order := range res.ArrivalOrder {
		if len(order) != 8 {
			t.Fatalf("rank %d arrivals = %d, want 8", r, len(order))
		}
		if order[0] != r {
			t.Fatalf("rank %d first chunk = %d, want own chunk %d", r, order[0], r)
		}
	}
}

func TestHalvingDoublingEmulationMatchesTreeResult(t *testing.T) {
	// All algorithms compute the same sums (fp32 addition order differs, so
	// use integer-valued data for exact equality).
	rng := rand.New(rand.NewSource(83))
	inputs, _ := randInputs(rng, 8, 512)
	hd, err := AllReduceHalvingDoubling(inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := AllReduceRing(inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for g := range hd.Buffers {
		for j := range hd.Buffers[g] {
			if hd.Buffers[g][j] != ring.Buffers[g][j] {
				t.Fatalf("GPU %d elem %d: hd %v vs ring %v", g, j, hd.Buffers[g][j], ring.Buffers[g][j])
			}
		}
	}
}
