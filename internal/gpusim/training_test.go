package gpusim

import (
	"math/rand"
	"testing"

	"ccube/internal/collective"
	"ccube/internal/dnn"
)

// trainMLP trains 8 data-parallel replicas of a small MLP through the
// persistent-kernel AllReduce emulation, applying SGD per layer in gradient
// queue dequeue order, and returns replica 0 (all replicas stay identical).
func trainMLP(t *testing.T, overlap bool, iterations int) *dnn.MLP {
	t.Helper()
	const gpus = 8
	const shard = 8
	rng := rand.New(rand.NewSource(4))
	xs := make([][][]float32, gpus)
	ys := make([][][]float32, gpus)
	for g := 0; g < gpus; g++ {
		for s := 0; s < shard; s++ {
			a, b := rng.Float32()-0.5, rng.Float32()-0.5
			xs[g] = append(xs[g], []float32{a, b})
			ys[g] = append(ys[g], []float32{a + 0.5*b})
		}
	}
	replicas := make([]*dnn.MLP, gpus)
	for g := range replicas {
		replicas[g] = dnn.NewMLP([]int{2, 8, 1}, 3)
	}
	t1, t2 := collective.DGX1Trees()
	elems := replicas[0].LayerElems()
	for iter := 0; iter < iterations; iter++ {
		grads := make([][]float32, gpus)
		for g := 0; g < gpus; g++ {
			grads[g] = replicas[g].GradBuffer(xs[g], ys[g])
		}
		cfg := Config{
			Trees:      []collective.Tree{t1, t2},
			Detours:    DGX1Detours(),
			Chunks:     6,
			Overlap:    overlap,
			LayerElems: elems,
			OnLayer: func(gpu, layer int, grad []float32) {
				replicas[gpu].ApplyLayer(layer, grad, 0.15, 1.0/float32(gpus*shard))
			},
		}
		if _, err := AllReduce(grads, cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Data parallelism invariant: every replica holds identical weights.
	for g := 1; g < gpus; g++ {
		if !replicas[0].WeightsEqual(replicas[g]) {
			t.Fatalf("replica %d diverged from replica 0", g)
		}
	}
	return replicas[0]
}

func TestDataParallelTrainingBitIdenticalAcrossModes(t *testing.T) {
	// The paper's accuracy claim, end to end with real arithmetic: C-Cube
	// (overlap + gradient queuing) changes only the schedule, never the
	// order of any reduction or update, so its trained weights are
	// bit-identical to the non-overlapped tree baseline's.
	baseline := trainMLP(t, false, 25)
	ccube := trainMLP(t, true, 25)
	if !baseline.WeightsEqual(ccube) {
		t.Fatal("C-Cube training diverged from baseline tree training")
	}
}

func TestDataParallelTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs, ys [][]float32
	for s := 0; s < 64; s++ {
		a, b := rng.Float32()-0.5, rng.Float32()-0.5
		xs = append(xs, []float32{a, b})
		ys = append(ys, []float32{a + 0.5*b})
	}
	fresh := dnn.NewMLP([]int{2, 8, 1}, 3)
	before := fresh.Loss(xs, ys)
	trained := trainMLP(t, true, 400)
	after := trained.Loss(xs, ys)
	if after >= before/2 {
		t.Fatalf("loss %.6f -> %.6f, want clear reduction", before, after)
	}
}
