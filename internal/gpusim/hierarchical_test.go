package gpusim

import (
	"math/rand"
	"sync"
	"testing"
)

func TestHierarchicalEmulationCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, boxes := range []int{2, 3, 4} {
		for _, chained := range []bool{false, true} {
			inputs, want := randInputs(rng, boxes*8, 600)
			res, err := AllReduceHierarchical(inputs, HierConfig{
				Boxes: boxes, Chunks: 8, Chained: chained,
			})
			if err != nil {
				t.Fatalf("boxes=%d chained=%v: %v", boxes, chained, err)
			}
			checkSum(t, res, want)
		}
	}
}

func TestHierarchicalEmulationInOrderArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	inputs, _ := randInputs(rng, 16, 512)
	res, err := AllReduceHierarchical(inputs, HierConfig{Boxes: 2, Chunks: 16, Chained: true})
	if err != nil {
		t.Fatal(err)
	}
	for g, order := range res.ArrivalOrder {
		if len(order) != 16 {
			t.Fatalf("GPU %d arrivals = %d, want 16", g, len(order))
		}
		for c := 1; c < len(order); c++ {
			if order[c] != order[c-1]+1 {
				t.Fatalf("GPU %d arrivals out of order: %v", g, order)
			}
		}
	}
}

func TestHierarchicalEmulationMatchesFlat(t *testing.T) {
	// The hierarchical composition must compute the same sums as a flat
	// tree over all GPUs (integer data: exact equality regardless of
	// reduction order differences... the orders differ, so use values whose
	// sums are exact in fp32: small integers).
	rng := rand.New(rand.NewSource(93))
	inputs, want := randInputs(rng, 16, 400)
	hier, err := AllReduceHierarchical(inputs, HierConfig{Boxes: 2, Chunks: 4, Chained: true})
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, hier, want)
}

func TestHierarchicalEmulationValidation(t *testing.T) {
	inputs := make([][]float32, 16)
	for i := range inputs {
		inputs[i] = make([]float32, 32)
	}
	bad := []HierConfig{
		{Boxes: 1, Chunks: 4},
		{Boxes: 2, Chunks: 0},
		{Boxes: 2, Chunks: 64}, // more chunks than elements
		{Boxes: 3, Chunks: 4},  // 16 inputs != 24
	}
	for i, cfg := range bad {
		if _, err := AllReduceHierarchical(inputs, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestHierarchicalEmulationBaselineSameResultAsChained(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	inputs, _ := randInputs(rng, 24, 333)
	base, err := AllReduceHierarchical(inputs, HierConfig{Boxes: 3, Chunks: 7, Chained: false})
	if err != nil {
		t.Fatal(err)
	}
	chained, err := AllReduceHierarchical(inputs, HierConfig{Boxes: 3, Chunks: 7, Chained: true})
	if err != nil {
		t.Fatal(err)
	}
	for g := range base.Buffers {
		for j := range base.Buffers[g] {
			if base.Buffers[g][j] != chained.Buffers[g][j] {
				t.Fatalf("GPU %d elem %d differs between barriered and chained", g, j)
			}
		}
	}
}

func TestHierarchicalGradientQueueChaining(t *testing.T) {
	// Gradient queuing across the whole cluster: every GPU dequeues layers
	// in order, each with fully reduced gradients, while the three-level
	// collective is still in flight.
	rng := rand.New(rand.NewSource(95))
	layerElems := []int{50, 150, 300}
	inputs, want := randInputs(rng, 16, 500)
	var mu sync.Mutex
	good := true
	cfg := HierConfig{
		Boxes: 2, Chunks: 10, Chained: true,
		LayerElems: layerElems,
		OnLayer: func(gpu, layer int, grad []float32) {
			offsets := []int{0, 50, 200, 500}
			for j := range grad {
				if grad[j] != want[offsets[layer]+j] {
					mu.Lock()
					good = false
					mu.Unlock()
					return
				}
			}
		},
	}
	res, err := AllReduceHierarchical(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, res, want)
	if !good {
		t.Fatal("a layer was dequeued before its gradients were fully reduced")
	}
	for g, order := range res.DequeueOrder {
		if len(order) != 3 {
			t.Fatalf("GPU %d dequeued %d layers", g, len(order))
		}
		for i, l := range order {
			if l != i {
				t.Fatalf("GPU %d dequeue order %v", g, order)
			}
		}
	}
}

func TestHierarchicalLayerElemsValidation(t *testing.T) {
	inputs := make([][]float32, 16)
	for i := range inputs {
		inputs[i] = make([]float32, 100)
	}
	cfg := HierConfig{Boxes: 2, Chunks: 4, LayerElems: []int{30, 30}}
	if _, err := AllReduceHierarchical(inputs, cfg); err == nil {
		t.Fatal("mismatched layer elements accepted")
	}
}
