package gpusim

import (
	"fmt"
	"sync"

	"ccube/internal/chunk"
	"ccube/internal/collective"
	"ccube/internal/gradqueue"
	"ccube/internal/p2psync"
)

// Hierarchical emulation: the multi-node C-Cube composition (see
// internal/collective/hierarchical.go) executed as real persistent kernels.
// Each box runs intra-node reduce and broadcast kernels; each box leader
// additionally runs inter-node kernels over the fabric. Chaining between
// levels uses counting semaphores with the Fig. 11 `check` primitive: level
// N+1's kernel for chunk c spins until level N's progress counter covers c
// — exactly how a device-side implementation would compose the phases
// without host round-trips.

// HierConfig describes one emulated hierarchical AllReduce.
type HierConfig struct {
	Boxes  int // number of 8-GPU boxes
	Chunks int
	// Chained: chunk-level chaining across levels; false = phase barriers.
	Chained bool
	// MailboxDepth is the per-channel receive-buffer count (default 2).
	MailboxDepth int

	// LayerElems optionally enables gradient queuing on every GPU of the
	// cluster (element counts per layer, summing to the input length); each
	// GPU then runs a forward-compute consumer invoking OnLayer in dequeue
	// order — the C-Cube chaining carried through all three levels.
	LayerElems []int
	OnLayer    func(gpu, layer int, grad []float32)
}

// AllReduceHierarchical runs the emulation over len(inputs) = Boxes*8 GPU
// input vectors and returns the reduced buffers.
func AllReduceHierarchical(inputs [][]float32, cfg HierConfig) (*Result, error) {
	if cfg.Boxes < 2 {
		return nil, fmt.Errorf("gpusim: hierarchical over %d boxes", cfg.Boxes)
	}
	if len(inputs) != cfg.Boxes*8 {
		return nil, fmt.Errorf("gpusim: %d inputs for %d boxes", len(inputs), cfg.Boxes)
	}
	elems := len(inputs[0])
	for g, in := range inputs {
		if len(in) != elems {
			return nil, fmt.Errorf("gpusim: GPU %d has %d elements, want %d", g, len(in), elems)
		}
	}
	k := cfg.Chunks
	if k < 1 {
		return nil, fmt.Errorf("gpusim: %d chunks", k)
	}
	if k > elems {
		return nil, fmt.Errorf("gpusim: %d chunks for %d elements", k, elems)
	}
	depth := cfg.MailboxDepth
	if depth == 0 {
		depth = 2
	}

	part := chunk.Split(int64(elems), k)
	res := &Result{
		Buffers:      make([][]float32, len(inputs)),
		ArrivalOrder: make([][]int, len(inputs)),
	}
	for g := range res.Buffers {
		res.Buffers[g] = append([]float32(nil), inputs[g]...)
	}
	for g := range res.ArrivalOrder {
		res.ArrivalOrder[g] = make([]int, 0, k) // prealloc: every chunk arrives exactly once per GPU
	}
	slice := func(g, c int) []float32 {
		lo := part.Offsets[c]
		return res.Buffers[g][lo : lo+part.Sizes[c]]
	}
	// Gradient queues (optional): enqueue on every recorded arrival.
	var queues []*gradqueue.Queue
	layerOffsets := make([]int, len(cfg.LayerElems)+1)
	if cfg.LayerElems != nil {
		total := 0
		layerBytes := make([]int64, len(cfg.LayerElems))
		for i, e := range cfg.LayerElems {
			if e < 0 {
				return nil, fmt.Errorf("gpusim: layer %d has %d elements", i, e)
			}
			total += e
			layerBytes[i] = int64(e)
			layerOffsets[i+1] = layerOffsets[i] + e
		}
		if total != elems {
			return nil, fmt.Errorf("gpusim: layers cover %d elements, inputs have %d", total, elems)
		}
		table := chunk.BuildLayerChunkTable(layerBytes, part)
		queues = make([]*gradqueue.Queue, len(inputs))
		for g := range queues {
			queues[g] = gradqueue.New(k, table)
		}
		res.DequeueOrder = make([][]int, len(inputs))
		for g := range res.DequeueOrder {
			res.DequeueOrder[g] = make([]int, 0, len(cfg.LayerElems)) // prealloc: each layer dequeues exactly once
		}
	}

	var arrivalMu sync.Mutex
	record := func(g, c int) {
		arrivalMu.Lock()
		res.ArrivalOrder[g] = append(res.ArrivalOrder[g], c)
		arrivalMu.Unlock()
		if queues != nil {
			queues[g].Enqueue(c)
		}
	}

	intraTree, _ := collective.DGX1Trees()
	interTree := collective.InorderTree(cfg.Boxes)
	leader := intraTree.Root // participant index of the fabric-attached GPU

	// Progress counters chaining the levels (Fig. 11 `check` consumers).
	boxReduced := make([]*p2psync.Semaphore, cfg.Boxes)
	leaderHas := make([]*p2psync.Semaphore, cfg.Boxes)
	for b := range boxReduced {
		boxReduced[b] = p2psync.NewSemaphore(0, 0)
		leaderHas[b] = p2psync.NewSemaphore(0, 0)
	}
	gate := func(sem *p2psync.Semaphore, c int) {
		if cfg.Chained {
			sem.Check(int64(c) + 1)
		} else {
			sem.Check(int64(k)) // barrier: the whole previous phase
		}
	}

	gpu := func(b, v int) int { return b*8 + v }
	var wg sync.WaitGroup

	// --- Intra-box reduction kernels ---
	intraUp := make([][]*p2psync.Mailbox, cfg.Boxes) // [box][childParticipant]
	for b := 0; b < cfg.Boxes; b++ {
		intraUp[b] = make([]*p2psync.Mailbox, 8)
		for v := 0; v < 8; v++ {
			if intraTree.Parent[v] >= 0 {
				intraUp[b][v] = p2psync.NewMailbox(depth)
			}
		}
	}
	for b := 0; b < cfg.Boxes; b++ {
		for v := 0; v < 8; v++ {
			b, v := b, v
			wg.Add(1)
			go func() { // intra reduce kernel
				defer wg.Done()
				for c := 0; c < k; c++ {
					local := slice(gpu(b, v), c)
					for _, w := range intraTree.Children[v] {
						intraUp[b][w].Recv(func(data []float32) {
							for i := range local {
								local[i] += data[i]
							}
						})
					}
					if v != intraTree.Root {
						intraUp[b][v].Send(local)
					} else {
						boxReduced[b].Post()
					}
				}
			}()
		}
	}

	// --- Inter-box kernels on the leaders ---
	interUp := make([]*p2psync.Mailbox, cfg.Boxes)
	interDown := make([]*p2psync.Mailbox, cfg.Boxes)
	for b := 0; b < cfg.Boxes; b++ {
		if interTree.Parent[b] >= 0 {
			interUp[b] = p2psync.NewMailbox(depth)
			interDown[b] = p2psync.NewMailbox(depth)
		}
	}
	for b := 0; b < cfg.Boxes; b++ {
		b := b
		isRoot := b == interTree.Root
		wg.Add(1)
		go func() { // inter reduce kernel on box b's leader
			defer wg.Done()
			for c := 0; c < k; c++ {
				gate(boxReduced[b], c)
				local := slice(gpu(b, leader), c)
				for _, w := range interTree.Children[b] {
					interUp[w].Recv(func(data []float32) {
						for i := range local {
							local[i] += data[i]
						}
					})
				}
				if !isRoot {
					interUp[b].Send(local)
					continue
				}
				// Globally reduced at the inter root's leader.
				record(gpu(b, leader), c)
				leaderHas[b].Post()
				for _, w := range interTree.Children[b] {
					interDown[w].Send(local)
				}
			}
		}()
		if !isRoot {
			wg.Add(1)
			go func() { // inter broadcast kernel on box b's leader
				defer wg.Done()
				for c := 0; c < k; c++ {
					local := slice(gpu(b, leader), c)
					interDown[b].Recv(func(data []float32) {
						copy(local, data)
					})
					record(gpu(b, leader), c)
					leaderHas[b].Post()
					for _, w := range interTree.Children[b] {
						interDown[w].Send(local)
					}
				}
			}()
		}
	}

	// --- Intra-box broadcast kernels ---
	intraDown := make([][]*p2psync.Mailbox, cfg.Boxes)
	for b := 0; b < cfg.Boxes; b++ {
		intraDown[b] = make([]*p2psync.Mailbox, 8)
		for v := 0; v < 8; v++ {
			if intraTree.Parent[v] >= 0 {
				intraDown[b][v] = p2psync.NewMailbox(depth)
			}
		}
	}
	for b := 0; b < cfg.Boxes; b++ {
		for v := 0; v < 8; v++ {
			b, v := b, v
			if v == intraTree.Root {
				wg.Add(1)
				go func() { // leader's intra broadcast source kernel
					defer wg.Done()
					for c := 0; c < k; c++ {
						gate(leaderHas[b], c)
						local := slice(gpu(b, v), c)
						for _, w := range intraTree.Children[v] {
							intraDown[b][w].Send(local)
						}
					}
				}()
				continue
			}
			wg.Add(1)
			go func() { // non-leader broadcast kernel
				defer wg.Done()
				for c := 0; c < k; c++ {
					local := slice(gpu(b, v), c)
					intraDown[b][v].Recv(func(data []float32) {
						copy(local, data)
					})
					record(gpu(b, v), c)
					for _, w := range intraTree.Children[v] {
						intraDown[b][w].Send(local)
					}
				}
			}()
		}
	}

	// Forward-compute consumers (gradient queuing).
	if queues != nil {
		for g := range inputs {
			g := g
			wg.Add(1)
			go func() { // forward-compute kernel for GPU g
				defer wg.Done()
				for {
					l, ok := queues[g].DequeueLayer()
					if !ok {
						return
					}
					res.DequeueOrder[g] = append(res.DequeueOrder[g], l)
					if cfg.OnLayer != nil {
						cfg.OnLayer(g, l, res.Buffers[g][layerOffsets[l]:layerOffsets[l+1]])
					}
				}
			}()
		}
	}

	wg.Wait()
	return res, nil
}
