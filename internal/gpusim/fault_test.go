package gpusim

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"ccube/internal/collective"
)

// A generous budget: far more spins than a healthy run needs, small enough
// that a genuinely dead path stalls in well under a second.
const testSpinBudget = 1 << 18

// The acceptance scenario on the functional emulator: the direct links for
// the detoured tree edges are dead, and the run still computes an exact
// AllReduce because traffic rides the static forwarding kernels (§IV-A).
func TestDeadEdgeRecoversViaDetour(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, overlap := range []bool{false, true} {
		inputs, want := randInputs(rng, 8, 1000)
		cfg := dgx1Config(8, overlap)
		cfg.DeadEdges = map[[2]int]bool{{2, 4}: true, {3, 5}: true}
		cfg.SpinBudget = testSpinBudget
		res, err := AllReduce(inputs, cfg)
		if err != nil {
			t.Fatalf("overlap=%v: %v", overlap, err)
		}
		checkSum(t, res, want)
	}
}

// A dead edge with no detour must fail loudly with a *StallError naming the
// starved kernels — never deadlock. The test completing at all is the
// no-deadlock proof.
func TestDeadEdgeWithoutDetourFailsLoudly(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, overlap := range []bool{false, true} {
		inputs, _ := randInputs(rng, 8, 1000)
		cfg := dgx1Config(8, overlap)
		// Tree 1's GPU1->GPU2 edge has no detour mapping.
		cfg.DeadEdges = map[[2]int]bool{{1, 2}: true}
		cfg.SpinBudget = testSpinBudget
		_, err := AllReduce(inputs, cfg)
		var se *StallError
		if !errors.As(err, &se) {
			t.Fatalf("overlap=%v: err = %v, want *StallError", overlap, err)
		}
		if len(se.Kernels) == 0 || !strings.Contains(se.Error(), "stalled") {
			t.Fatalf("overlap=%v: uninformative stall error: %v", overlap, se)
		}
	}
}

// Gradient-queuing consumers must also unwind on a stall: the chunks for
// later layers never arrive, and the compute kernels report it instead of
// spinning forever.
func TestDeadEdgeStallsGradientQueueLoudly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inputs, _ := randInputs(rng, 8, 1000)
	cfg := dgx1Config(8, true)
	cfg.DeadEdges = map[[2]int]bool{{1, 2}: true}
	cfg.SpinBudget = testSpinBudget
	cfg.LayerElems = []int{300, 400, 300}
	_, err := AllReduce(inputs, cfg)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
}

// Dead edge + no detour + unbounded spins is refused up front: that
// configuration cannot terminate.
func TestDeadEdgeWithoutBudgetRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	inputs, _ := randInputs(rng, 8, 100)
	cfg := dgx1Config(4, true)
	cfg.DeadEdges = map[[2]int]bool{{1, 2}: true}
	_, err := AllReduce(inputs, cfg)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want config rejection", err)
	}
}

// SpinBudget on a healthy fabric is harmless: same exact result.
func TestSpinBudgetHealthyRunUnaffected(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	inputs, want := randInputs(rng, 8, 1000)
	cfg := dgx1Config(8, true)
	cfg.SpinBudget = testSpinBudget
	cfg.LayerElems = []int{250, 250, 250, 250}
	res, err := AllReduce(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, res, want)
	for g, order := range res.DequeueOrder {
		if len(order) != 4 {
			t.Fatalf("GPU %d dequeued %d layers, want 4", g, len(order))
		}
	}
}

// Killing a detoured edge must not perturb results across tree shapes and
// chunk counts (the forwarding kernel is the same either way).
func TestDeadDetouredEdgeMatchesHealthy(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	t1, t2 := collective.DGX1Trees()
	for _, chunks := range []int{2, 7, 16} {
		inputs, want := randInputs(rng, 8, 500)
		cfg := Config{
			Trees:      []collective.Tree{t1, t2},
			Detours:    DGX1Detours(),
			Chunks:     chunks,
			Overlap:    true,
			DeadEdges:  map[[2]int]bool{{2, 4}: true},
			SpinBudget: testSpinBudget,
		}
		res, err := AllReduce(inputs, cfg)
		if err != nil {
			t.Fatalf("chunks=%d: %v", chunks, err)
		}
		checkSum(t, res, want)
	}
}
