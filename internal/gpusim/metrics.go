package gpusim

import "ccube/internal/metrics"

// Persistent-kernel emulation instruments.
var (
	mAllReduces = metrics.Default.Counter("gpusim_allreduce_total",
		"emulated AllReduce operations started")
	mKernelStalls = metrics.Default.Counter("gpusim_kernel_stalls_total",
		"persistent kernels that exhausted their spin budget")
	mChunksForwarded = metrics.Default.Counter("gpusim_chunks_forwarded_total",
		"chunks moved by detour forwarding kernels")
)
