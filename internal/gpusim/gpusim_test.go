package gpusim

import (
	"math/rand"
	"testing"

	"ccube/internal/collective"
)

func randInputs(rng *rand.Rand, gpus, elems int) ([][]float32, []float32) {
	inputs := make([][]float32, gpus)
	want := make([]float32, elems)
	for g := range inputs {
		inputs[g] = make([]float32, elems)
		for j := range inputs[g] {
			inputs[g][j] = float32(rng.Intn(200) - 100)
			want[j] += inputs[g][j]
		}
	}
	return inputs, want
}

func checkSum(t *testing.T, res *Result, want []float32) {
	t.Helper()
	for g, buf := range res.Buffers {
		for j := range buf {
			if buf[j] != want[j] {
				t.Fatalf("GPU %d elem %d = %v, want %v", g, j, buf[j], want[j])
			}
		}
	}
}

func dgx1Config(chunks int, overlap bool) Config {
	t1, t2 := collective.DGX1Trees()
	return Config{
		Trees:   []collective.Tree{t1, t2},
		Detours: DGX1Detours(),
		Chunks:  chunks,
		Overlap: overlap,
	}
}

func TestTreeAllReduceCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, overlap := range []bool{false, true} {
		for _, chunks := range []int{2, 7, 32} {
			inputs, want := randInputs(rng, 8, 1000)
			res, err := AllReduce(inputs, dgx1Config(chunks, overlap))
			if err != nil {
				t.Fatalf("overlap=%v chunks=%d: %v", overlap, chunks, err)
			}
			checkSum(t, res, want)
		}
	}
}

func TestSingleTreeAllReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	t1, _ := collective.DGX1Trees()
	inputs, want := randInputs(rng, 8, 512)
	res, err := AllReduce(inputs, Config{
		Trees:   []collective.Tree{t1},
		Detours: DGX1Detours(),
		Chunks:  16,
		Overlap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, res, want)
}

func TestGenericTreesVariousSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, p := range []int{2, 4, 8, 16} {
		t1, t2 := collective.DoubleTrees(p)
		inputs, want := randInputs(rng, p, 300)
		res, err := AllReduce(inputs, Config{
			Trees:   []collective.Tree{t1, t2},
			Chunks:  10,
			Overlap: true,
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		checkSum(t, res, want)
	}
}

func TestPerTreeInOrderArrival(t *testing.T) {
	// Observation #3: each GPU must see each tree's chunks in increasing
	// order. Tree 0 owns even chunks, tree 1 odd chunks.
	rng := rand.New(rand.NewSource(4))
	inputs, _ := randInputs(rng, 8, 2048)
	res, err := AllReduce(inputs, dgx1Config(32, true))
	if err != nil {
		t.Fatal(err)
	}
	for g, order := range res.ArrivalOrder {
		if len(order) != 32 {
			t.Fatalf("GPU %d enqueued %d chunks, want 32", g, len(order))
		}
		lastEven, lastOdd := -1, -1
		for _, c := range order {
			if c%2 == 0 {
				if c < lastEven {
					t.Fatalf("GPU %d: tree-0 chunk %d after %d", g, c, lastEven)
				}
				lastEven = c
			} else {
				if c < lastOdd {
					t.Fatalf("GPU %d: tree-1 chunk %d after %d", g, c, lastOdd)
				}
				lastOdd = c
			}
		}
	}
}

func TestGradientQueueChaining(t *testing.T) {
	// Layers dequeue strictly in order on every GPU, and each layer's
	// gradients are already the global sums when OnLayer fires.
	rng := rand.New(rand.NewSource(5))
	layerElems := []int{100, 200, 300, 400}
	elems := 1000
	inputs, want := randInputs(rng, 8, elems)

	type seen struct {
		layer int
		ok    bool
	}
	// Per-GPU callbacks run on that GPU's single compute kernel; no locking.
	observed := make([][]seen, 8)

	cfg := dgx1Config(16, true)
	cfg.LayerElems = layerElems
	offsets := []int{0, 100, 300, 600, 1000}
	cfg.OnLayer = func(gpu, layer int, grad []float32) {
		good := true
		for j := range grad {
			if grad[j] != want[offsets[layer]+j] {
				good = false
				break
			}
		}
		observed[gpu] = append(observed[gpu], seen{layer, good})
	}
	res, err := AllReduce(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkSum(t, res, want)
	for g := range observed {
		if len(observed[g]) != len(layerElems) {
			t.Fatalf("GPU %d saw %d layers, want %d", g, len(observed[g]), len(layerElems))
		}
		for i, s := range observed[g] {
			if s.layer != i {
				t.Fatalf("GPU %d dequeued layer %d at position %d", g, s.layer, i)
			}
			if !s.ok {
				t.Fatalf("GPU %d layer %d gradients not fully reduced at dequeue", g, s.layer)
			}
		}
		for i, l := range res.DequeueOrder[g] {
			if l != i {
				t.Fatalf("GPU %d dequeue order %v", g, res.DequeueOrder[g])
			}
		}
	}
}

func TestBaselineVsOverlapSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inputs, _ := randInputs(rng, 8, 777)
	base, err := AllReduce(inputs, dgx1Config(9, false))
	if err != nil {
		t.Fatal(err)
	}
	over, err := AllReduce(inputs, dgx1Config(9, true))
	if err != nil {
		t.Fatal(err)
	}
	// Tree reduction order is identical, so results are bit-identical —
	// the basis of the paper's "no impact on accuracy" claim.
	for g := range base.Buffers {
		for j := range base.Buffers[g] {
			if base.Buffers[g][j] != over.Buffers[g][j] {
				t.Fatalf("GPU %d elem %d differs between baseline and overlap", g, j)
			}
		}
	}
}

func TestRingAllReduceCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []int{2, 4, 8, 13} {
		inputs, want := randInputs(rng, p, 500)
		res, err := AllReduceRing(inputs, 0)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		checkSum(t, res, want)
	}
}

func TestRingArrivalOrderDiffersPerGPU(t *testing.T) {
	// The ring's first completed chunk differs per GPU (chunk (i+1) mod P at
	// GPU i) — the property that prevents gradient queuing on ring.
	rng := rand.New(rand.NewSource(8))
	inputs, _ := randInputs(rng, 8, 256)
	res, err := AllReduceRing(inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	firsts := make(map[int]bool)
	for g, order := range res.ArrivalOrder {
		if len(order) != 8 {
			t.Fatalf("GPU %d arrival count %d, want 8", g, len(order))
		}
		if order[0] != (g+1)%8 {
			t.Fatalf("GPU %d first chunk %d, want %d", g, order[0], (g+1)%8)
		}
		firsts[order[0]] = true
	}
	if len(firsts) != 8 {
		t.Fatalf("first-chunk set has %d distinct values, want 8", len(firsts))
	}
}

func TestConfigValidation(t *testing.T) {
	t1, t2 := collective.DGX1Trees()
	good := [][]float32{make([]float32, 10), make([]float32, 10)}
	cases := []struct {
		name   string
		inputs [][]float32
		cfg    Config
	}{
		{"one gpu", [][]float32{make([]float32, 10)}, Config{Trees: []collective.Tree{t1}, Chunks: 2}},
		{"mismatched lengths", [][]float32{make([]float32, 10), make([]float32, 9)}, Config{Trees: []collective.Tree{t1}, Chunks: 2}},
		{"no trees", good, Config{Chunks: 2}},
		{"wrong tree size", good, Config{Trees: []collective.Tree{t1, t2}, Chunks: 2}},
		{"too few chunks", good, Config{Trees: []collective.Tree{t1, t2}, Chunks: 1}},
	}
	for _, c := range cases {
		if _, err := AllReduce(c.inputs, c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLayerElemsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	inputs, _ := randInputs(rng, 8, 100)
	cfg := dgx1Config(4, true)
	cfg.LayerElems = []int{50, 40} // sums to 90, not 100
	if _, err := AllReduce(inputs, cfg); err == nil {
		t.Fatal("mismatched layer elements accepted")
	}
}

func TestPropertyRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 20; iter++ {
		p := []int{2, 4, 8, 16, 32}[rng.Intn(5)]
		t1, t2 := collective.DoubleTrees(p)
		trees := []collective.Tree{t1}
		if rng.Intn(2) == 1 {
			trees = append(trees, t2)
		}
		chunks := rng.Intn(30) + len(trees)
		elems := chunks + rng.Intn(2000)
		inputs, want := randInputs(rng, p, elems)
		res, err := AllReduce(inputs, Config{
			Trees:        trees,
			Chunks:       chunks,
			Overlap:      rng.Intn(2) == 1,
			MailboxDepth: rng.Intn(3) + 1,
		})
		if err != nil {
			t.Fatalf("iter %d (p=%d chunks=%d elems=%d): %v", iter, p, chunks, elems, err)
		}
		checkSum(t, res, want)
	}
}
