// Package gpusim is a functional emulation of the paper's proof-of-concept:
// C-Cube implemented as persistent kernels synchronized entirely on the
// device side. Each GPU is a set of goroutines ("persistent kernels") —
// reduce, broadcast, detour-forwarding, and forward-compute consumers —
// that communicate only through p2psync mailboxes and semaphores (Fig. 11)
// and per-GPU gradient queues (Fig. 9). No Go channels, mutexes, or host
// coordination appear on the data path.
//
// The package answers the correctness questions the real-system prototype
// answers: the chained algorithms deadlock-free deliver exact AllReduce
// results, chunks arrive in order per tree, detour kernels forward
// transparently, and gradient queuing releases layers exactly when their
// chunks are in. Timing questions are answered by the des-based simulator
// in internal/collective.
package gpusim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ccube/internal/chunk"
	"ccube/internal/collective"
	"ccube/internal/gradqueue"
	"ccube/internal/p2psync"
)

// Config describes one emulated AllReduce.
type Config struct {
	// Trees are the logical reduction trees (1 = single tree, 2 = double
	// tree). Chunks are assigned round-robin across trees, as in the
	// schedule-based simulator.
	Trees []collective.Tree

	// Detours maps a tree edge (child, parent) to the intermediate GPU that
	// statically forwards its traffic in both directions (paper §IV-A). Use
	// DGX1Detours for the paper's mapping.
	Detours map[[2]int]int

	// Chunks is the number of pipeline chunks (must be >= len(Trees)).
	Chunks int

	// Overlap chains each chunk's broadcast with the ongoing reduction
	// (C1). When false the root broadcasts only after its tree's entire
	// reduction completes (baseline).
	Overlap bool

	// MailboxDepth is the number of receive buffers per channel direction
	// (default 2).
	MailboxDepth int

	// LayerElems optionally enables gradient queuing: element counts per
	// layer (summing to the input length). Each GPU then runs a
	// forward-compute consumer that dequeues layers in order and invokes
	// OnLayer with the layer's freshly reduced gradients.
	LayerElems []int

	// OnLayer is called by GPU g's compute kernel when layer l is dequeued,
	// with a view of the reduced gradient slice. May be nil.
	OnLayer func(gpu, layer int, grad []float32)

	// DeadEdges marks tree edges (child, parent) whose direct NVLink has
	// failed. A dead edge that has a Detours entry recovers transparently:
	// traffic rides the intermediate GPU's forwarding kernel, exactly the
	// paper's detour mechanism. A dead edge with no detour delivers nothing;
	// kernels touching it exhaust their SpinBudget and the run fails loudly
	// with a *StallError instead of deadlocking.
	DeadEdges map[[2]int]bool

	// SpinBudget bounds every device-side wait (mailbox send/recv, semaphore
	// check, gradient-queue dequeue) to this many failed spins before the
	// kernel gives up and reports a stall. <= 0 means unbounded waits (the
	// healthy-fabric default). Required whenever DeadEdges contains an edge
	// without a detour.
	SpinBudget int
}

// StallError reports persistent kernels that exhausted their spin budget —
// the loud-failure outcome for an unrepaired dead link. Kernels lists one
// description per stalled kernel.
type StallError struct {
	Kernels []string
}

func (e *StallError) Error() string {
	return fmt.Sprintf("gpusim: %d kernel(s) stalled past their spin budget: %s",
		len(e.Kernels), strings.Join(e.Kernels, "; "))
}

// stallTracker collects stall reports from kernels across goroutines.
type stallTracker struct {
	mu      sync.Mutex
	kernels []string
}

func (s *stallTracker) note(format string, args ...any) {
	mKernelStalls.Inc()
	s.mu.Lock()
	s.kernels = append(s.kernels, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

func (s *stallTracker) err() *StallError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.kernels) == 0 {
		return nil
	}
	sort.Strings(s.kernels)
	return &StallError{Kernels: append([]string(nil), s.kernels...)}
}

// Result reports the outcome of one emulated AllReduce.
type Result struct {
	// Buffers are the per-GPU gradient buffers after the operation; every
	// buffer must equal the element-wise sum of the inputs.
	Buffers [][]float32

	// ArrivalOrder[g] lists chunk indices in the order GPU g enqueued them
	// (per-tree in-order arrival can be checked against it).
	ArrivalOrder [][]int

	// DequeueOrder[g] lists layers in dequeue order (gradient queuing only).
	DequeueOrder [][]int
}

// DGX1Detours returns the detour map of the paper's DGX-1 mapping: tree 1's
// GPU2->GPU4 edge through GPU0 and tree 2's GPU3->GPU5 edge through GPU1.
func DGX1Detours() map[[2]int]int {
	return map[[2]int]int{
		{2, 4}: 0,
		{3, 5}: 1,
	}
}

// edgeLink is the mailbox pair for one tree edge direction, possibly with a
// forwarding kernel in the middle.
type edgeLink struct {
	first *p2psync.Mailbox // sender writes here
	last  *p2psync.Mailbox // receiver reads here (== first when direct)
}

// newEdgeLink builds the mailboxes for an edge and, when detoured, starts
// the static forwarding kernel on the intermediate GPU: a persistent loop
// moving nChunks chunks from the inbound to the outbound mailbox. A dead
// edge without a detour is wired as two disconnected mailboxes: sends fill
// the first and never reach the last, so bounded kernels stall loudly.
func newEdgeLink(depth, nChunks int, detoured, dead bool, desc string,
	st *stallTracker, budget int, wg *sync.WaitGroup) edgeLink {

	in := p2psync.NewMailbox(depth)
	if dead && !detoured {
		return edgeLink{first: in, last: p2psync.NewMailbox(depth)}
	}
	if !detoured {
		return edgeLink{first: in, last: in}
	}
	out := p2psync.NewMailbox(depth)
	wg.Add(1)
	go func() { // forwarding kernel (paper §IV-A)
		defer wg.Done()
		for i := 0; i < nChunks; i++ {
			sendStalled := false
			forwarded := in.RecvBounded(func(data []float32) {
				if !out.SendBounded(data, budget) {
					st.note("forwarding kernel %s: send stalled at chunk slot %d", desc, i)
					sendStalled = true
				}
			}, budget)
			if !forwarded {
				st.note("forwarding kernel %s: recv stalled at chunk slot %d", desc, i)
				return
			}
			if sendStalled {
				return
			}
			mChunksForwarded.Inc()
		}
	}()
	return edgeLink{first: in, last: out}
}

// AllReduce runs the emulation over per-GPU input vectors and returns the
// reduced buffers. All inputs must share one length.
func AllReduce(inputs [][]float32, cfg Config) (*Result, error) {
	p := len(inputs)
	if p < 2 {
		return nil, fmt.Errorf("gpusim: %d GPUs", p)
	}
	elems := len(inputs[0])
	for g, in := range inputs {
		if len(in) != elems {
			return nil, fmt.Errorf("gpusim: GPU %d has %d elements, want %d", g, len(in), elems)
		}
	}
	if elems == 0 {
		return nil, fmt.Errorf("gpusim: empty inputs")
	}
	mAllReduces.Inc()
	if len(cfg.Trees) == 0 {
		return nil, fmt.Errorf("gpusim: no trees")
	}
	for ti, tr := range cfg.Trees {
		if len(tr.Parent) != p {
			return nil, fmt.Errorf("gpusim: tree %d spans %d nodes, want %d", ti, len(tr.Parent), p)
		}
	}
	k := cfg.Chunks
	if k < len(cfg.Trees) {
		return nil, fmt.Errorf("gpusim: %d chunks for %d trees", k, len(cfg.Trees))
	}
	if int64(k) > int64(elems) {
		return nil, fmt.Errorf("gpusim: %d chunks for %d elements", k, elems)
	}
	depth := cfg.MailboxDepth
	if depth == 0 {
		depth = 2
	}
	for e, dead := range cfg.DeadEdges {
		if !dead {
			continue
		}
		if _, ok := cfg.Detours[e]; !ok && cfg.SpinBudget <= 0 {
			return nil, fmt.Errorf("gpusim: dead edge %d->%d has no detour and no spin budget: run would deadlock", e[0], e[1])
		}
	}
	st := &stallTracker{}

	part := chunk.Split(int64(elems), k)
	res := &Result{
		Buffers:      make([][]float32, p),
		ArrivalOrder: make([][]int, p),
	}
	for g := range res.Buffers {
		res.Buffers[g] = append([]float32(nil), inputs[g]...)
	}
	for g := range res.ArrivalOrder {
		res.ArrivalOrder[g] = make([]int, 0, k) // prealloc: every chunk arrives exactly once per GPU
	}
	slice := func(g, c int) []float32 {
		lo := part.Offsets[c]
		return res.Buffers[g][lo : lo+part.Sizes[c]]
	}

	// Gradient queues (optional).
	var queues []*gradqueue.Queue
	var arrivalMu []sync.Mutex
	arrivalMu = make([]sync.Mutex, p)
	if cfg.LayerElems != nil {
		total := 0
		layerBytes := make([]int64, len(cfg.LayerElems))
		for i, e := range cfg.LayerElems {
			if e < 0 {
				return nil, fmt.Errorf("gpusim: layer %d has %d elements", i, e)
			}
			total += e
			layerBytes[i] = int64(e)
		}
		if total != elems {
			return nil, fmt.Errorf("gpusim: layers cover %d elements, inputs have %d", total, elems)
		}
		table := chunk.BuildLayerChunkTable(layerBytes, part)
		queues = make([]*gradqueue.Queue, p)
		for g := range queues {
			queues[g] = gradqueue.New(k, table)
		}
		res.DequeueOrder = make([][]int, p)
		for g := range res.DequeueOrder {
			res.DequeueOrder[g] = make([]int, 0, len(cfg.LayerElems)) // prealloc: each layer dequeues exactly once
		}
	}

	enqueue := func(g, c int) {
		arrivalMu[g].Lock()
		res.ArrivalOrder[g] = append(res.ArrivalOrder[g], c)
		arrivalMu[g].Unlock()
		if queues != nil {
			queues[g].Enqueue(c)
		}
	}

	var wg sync.WaitGroup
	for ti, tr := range cfg.Trees {
		chunks := treeChunkList(k, len(cfg.Trees), ti)
		runTree(ti, tr, chunks, cfg, depth, st, slice, enqueue, &wg)
	}

	// Forward-compute consumers (gradient queuing).
	layerOffsets := make([]int, len(cfg.LayerElems)+1)
	for i, e := range cfg.LayerElems {
		layerOffsets[i+1] = layerOffsets[i] + e
	}
	if queues != nil {
		for g := 0; g < p; g++ {
			g := g
			wg.Add(1)
			go func() { // forward-compute kernel
				defer wg.Done()
				for {
					l, ok, stalled := queues[g].DequeueLayerBounded(cfg.SpinBudget)
					if stalled {
						st.note("compute kernel gpu %d: dequeue of layer %d stalled", g, l)
						return
					}
					if !ok {
						return
					}
					res.DequeueOrder[g] = append(res.DequeueOrder[g], l)
					if cfg.OnLayer != nil {
						cfg.OnLayer(g, l, res.Buffers[g][layerOffsets[l]:layerOffsets[l+1]])
					}
				}
			}()
		}
	}

	wg.Wait()
	if err := st.err(); err != nil {
		return nil, err
	}
	return res, nil
}

func treeChunkList(k, numTrees, t int) []int {
	var out []int
	for c := t; c < k; c += numTrees {
		out = append(out, c)
	}
	return out
}

// runTree launches the persistent kernels for one tree: a reduce kernel per
// GPU and a broadcast kernel per non-root GPU (plus forwarding kernels
// inside detoured edge links). Every wait is bounded by cfg.SpinBudget
// (unbounded when <= 0); a kernel that exhausts its budget records a stall
// and exits, so a dead un-detoured link can never deadlock the run.
func runTree(ti int, tr collective.Tree, chunks []int, cfg Config, depth int,
	st *stallTracker, slice func(g, c int) []float32, enqueue func(g, c int), wg *sync.WaitGroup) {

	budget := cfg.SpinBudget
	p := len(tr.Parent)
	up := make([]edgeLink, p)   // up[v]: v -> parent(v)
	down := make([]edgeLink, p) // down[v]: parent(v) -> v
	for v := 0; v < p; v++ {
		if tr.Parent[v] < 0 {
			continue
		}
		edge := [2]int{v, tr.Parent[v]}
		_, detoured := cfg.Detours[edge]
		dead := cfg.DeadEdges[edge]
		upDesc := fmt.Sprintf("tree %d edge %d->%d", ti, v, tr.Parent[v])
		downDesc := fmt.Sprintf("tree %d edge %d->%d", ti, tr.Parent[v], v)
		up[v] = newEdgeLink(depth, len(chunks), detoured, dead, upDesc, st, budget, wg)
		down[v] = newEdgeLink(depth, len(chunks), detoured, dead, downDesc, st, budget, wg)
	}

	// Barrier for the non-overlapped tree: the root's broadcast waits until
	// its reduction phase has consumed every chunk.
	reductionDone := p2psync.NewSemaphore(0, 0)

	for v := 0; v < p; v++ {
		v := v
		isRoot := v == tr.Root
		children := tr.Children[v]

		// Reduce kernel: accumulate children contributions chunk by chunk,
		// then pass up (or, at the root, hand to broadcast).
		wg.Add(1)
		go func() { // reduce kernel for GPU v
			defer wg.Done()
			for _, c := range chunks {
				local := slice(v, c)
				for _, w := range children {
					got := up[w].last.RecvBounded(func(data []float32) {
						for i := range local {
							local[i] += data[i]
						}
					}, budget)
					if !got {
						st.note("reduce kernel gpu %d tree %d: recv of chunk %d from child %d stalled", v, ti, c, w)
						return
					}
				}
				if !isRoot {
					if !up[v].first.SendBounded(local, budget) {
						st.note("reduce kernel gpu %d tree %d: send of chunk %d to parent %d stalled", v, ti, c, tr.Parent[v])
						return
					}
					continue
				}
				// Chunk fully reduced at the root.
				enqueue(v, c)
				if cfg.Overlap {
					for _, w := range children {
						if !down[w].first.SendBounded(local, budget) {
							st.note("reduce kernel gpu %d tree %d: broadcast of chunk %d to child %d stalled", v, ti, c, w)
							return
						}
					}
				} else {
					reductionDone.Post()
				}
			}
			if isRoot && !cfg.Overlap {
				// Separate broadcast phase (baseline, Fig. 5(a)).
				if !reductionDone.CheckBounded(int64(len(chunks)), budget) {
					st.note("reduce kernel gpu %d tree %d: reduction barrier stalled", v, ti)
					return
				}
				for _, c := range chunks {
					local := slice(v, c)
					for _, w := range children {
						if !down[w].first.SendBounded(local, budget) {
							st.note("reduce kernel gpu %d tree %d: broadcast of chunk %d to child %d stalled", v, ti, c, w)
							return
						}
					}
				}
			}
		}()

		// Broadcast kernel: receive the final value, enqueue it, forward to
		// children.
		if !isRoot {
			wg.Add(1)
			go func() { // broadcast kernel for GPU v
				defer wg.Done()
				for _, c := range chunks {
					local := slice(v, c)
					got := down[v].last.RecvBounded(func(data []float32) {
						copy(local, data)
					}, budget)
					if !got {
						st.note("broadcast kernel gpu %d tree %d: recv of chunk %d from parent %d stalled", v, ti, c, tr.Parent[v])
						return
					}
					enqueue(v, c)
					for _, w := range children {
						if !down[w].first.SendBounded(local, budget) {
							st.note("broadcast kernel gpu %d tree %d: send of chunk %d to child %d stalled", v, ti, c, w)
							return
						}
					}
				}
			}()
		}
	}
}
