package experiments

import (
	"fmt"

	"ccube/internal/collective"
	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/topology"
	"ccube/internal/train"
)

// ExtDGX2 is an extension beyond the paper (its §VI leaves alternative
// physical topologies as future work): C-Cube on a 16-GPU DGX-2/NVSwitch
// crossbar. The crossbar removes both physical obstacles the paper had to
// engineer around on the DGX-1 —
//
//   - every pair is connected, so the double tree needs no detour routes
//     (and no GPU pays the forwarding tax);
//   - every logical edge gets dedicated channels, so the overlapped double
//     tree works without relying on duplicated link pairs.
//
// The experiment reports the AllReduce comparison at 64MB across all
// algorithms (including halving-doubling, which thrives on the crossbar)
// and the ResNet-50 training study at 16 GPUs.
func ExtDGX2() ([]*report.Table, error) {
	g := topology.DGX2()

	comm := report.New("Extension: AllReduce on DGX-2/NVSwitch (16 GPUs, 64MB)",
		"algorithm", "total", "bandwidth", "turnaround", "detours")
	algs := []collective.Algorithm{
		collective.AlgRing,
		collective.AlgHalvingDoubling,
		collective.AlgDoubleTree,
		collective.AlgDoubleTreeOverlap,
	}
	// The crossbar's two parallel channels per pair serve the ring too: two
	// concurrent rings split the message, as on the DGX-1.
	identity := make([]int, topology.DGX2NumGPUs)
	for i := range identity {
		identity[i] = i
	}
	var base, over *collective.Result
	for _, alg := range algs {
		cfg := collective.Config{Graph: g, Algorithm: alg, Bytes: 64 << 20}
		if alg == collective.AlgRing {
			cfg.RingOrders = [][]int{identity, identity}
		}
		sched, err := collective.Build(cfg)
		if err != nil {
			return nil, fmt.Errorf("dgx2 %v: %w", alg, err)
		}
		res, err := sched.Execute()
		if err != nil {
			return nil, err
		}
		if alg == collective.AlgDoubleTree {
			base = res
		}
		if alg == collective.AlgDoubleTreeOverlap {
			over = res
		}
		comm.AddRow(alg.String(), report.Time(res.Total), report.GBps(res.Bandwidth()),
			report.Time(res.Turnaround), fmt.Sprintf("%d", len(sched.DetourNodes())))
	}
	comm.AddNote("C1 over B on the crossbar: %s (DGX-1: ~1.76x) — no duplicated-link dependence",
		report.Ratio(float64(base.Total)/float64(over.Total)))

	trainT := report.New("Extension: ResNet-50 training on DGX-2 (batch 64/GPU)",
		"mode", "iteration", "normalized perf")
	for _, m := range train.Modes() {
		res, err := train.Run(train.Config{
			Model: dnn.ResNet50(), Batch: 64, Graph: g, Mode: m,
		})
		if err != nil {
			return nil, fmt.Errorf("dgx2 train %s: %w", m, err)
		}
		trainT.AddRow(string(m), report.Time(res.IterTime), report.F2(res.Normalized))
	}
	trainT.AddNote("16-way data parallelism; no detour forwarding tax on any GPU")
	return []*report.Table{comm, trainT}, nil
}
