package experiments

import (
	"fmt"

	"ccube/internal/collective"
	"ccube/internal/des"
	"ccube/internal/report"
)

// ExtInterference studies two collectives sharing one DGX-1 concurrently —
// e.g. a gradient AllReduce overlapping a parameter broadcast from a
// checkpoint restore, or two tenants time-sharing a box. The discrete-event
// simulator resolves the channel contention exactly; the question is how
// gracefully each algorithm degrades when it no longer owns the machine.
//
// The outcome is asymmetric: two C-Cube jobs time-share fairly (each ~1.8x
// slower, i.e. near-perfect halving), but pairing C-Cube with a ring hurts
// the tree disproportionately — the ring's long per-channel occupancy
// stalls the tree's pipelined chunks at shared hops, while the tree's small
// chunks barely delay the ring.
func ExtInterference() ([]*report.Table, error) {
	const bytes = 64 << 20
	type job struct {
		name string
		alg  collective.Algorithm
	}
	jobs := []job{
		{"ccube", collective.AlgDoubleTreeOverlap},
		{"ring", collective.AlgRing},
	}

	solo := map[string]des.Time{}
	for _, j := range jobs {
		res, err := collective.Run(collective.Config{Graph: dgx1(), Algorithm: j.alg, Bytes: bytes})
		if err != nil {
			return nil, fmt.Errorf("interference solo %s: %w", j.name, err)
		}
		solo[j.name] = res.Total
	}

	t := report.New("Extension: two concurrent 64MB collectives sharing one DGX-1",
		"pair", "job A time", "job B time", "A slowdown", "B slowdown")
	pairs := [][2]job{
		{jobs[0], jobs[0]},
		{jobs[1], jobs[1]},
		{jobs[0], jobs[1]},
	}
	for _, pair := range pairs {
		aTime, bTime, err := runPair(pair[0].alg, pair[1].alg, bytes)
		if err != nil {
			return nil, fmt.Errorf("interference %s+%s: %w", pair[0].name, pair[1].name, err)
		}
		t.AddRow(
			fmt.Sprintf("%s + %s", pair[0].name, pair[1].name),
			report.Time(aTime), report.Time(bTime),
			report.Ratio(float64(aTime)/float64(solo[pair[0].name])),
			report.Ratio(float64(bTime)/float64(solo[pair[1].name])),
		)
	}
	t.AddNote("both jobs launch at t=0 over the same channels; FIFO arbitration per channel")
	return []*report.Table{t}, nil
}

// runPair instantiates two schedules into one task graph over shared
// channel resources and reports each job's completion time.
func runPair(a, b collective.Algorithm, bytes int64) (des.Time, des.Time, error) {
	graph := dgx1()
	schedA, err := collective.Build(collective.Config{Graph: graph, Algorithm: a, Bytes: bytes,
		AllowSharedChannels: true})
	if err != nil {
		return 0, 0, err
	}
	schedB, err := collective.Build(collective.Config{Graph: graph, Algorithm: b, Bytes: bytes,
		AllowSharedChannels: true})
	if err != nil {
		return 0, 0, err
	}
	g := des.NewGraph()
	res := graph.Resources()
	instA, err := schedA.Instantiate(g, res, -1)
	if err != nil {
		return 0, 0, err
	}
	instB, err := schedB.Instantiate(g, res, -1)
	if err != nil {
		return 0, 0, err
	}
	g.Run()
	latest := func(inst *collective.Instantiation) des.Time {
		var end des.Time
		for _, row := range inst.ReadyTask {
			for _, id := range row {
				if e := g.End(id); e > end {
					end = e
				}
			}
		}
		return end
	}
	return latest(instA), latest(instB), nil
}
