package experiments

import (
	"ccube/internal/report"
	"ccube/internal/validate"
)

// ExtValidate cross-checks the discrete-event simulator against the
// closed-form alpha-beta cost models for every algorithm (the paper's
// Fig. 12(b) methodology, extended to the whole algorithm zoo).
func ExtValidate() ([]*report.Table, error) {
	entries, err := validate.CrossCheck(
		[]int{4, 8, 16, 32},
		[]int64{1 << 20, 16 << 20, 64 << 20},
	)
	if err != nil {
		return nil, err
	}
	return []*report.Table{validate.Table(entries)}, nil
}
