package experiments

import (
	"ccube/internal/collective"
	"ccube/internal/costmodel"
	"ccube/internal/report"
	"ccube/internal/topology"
)

// fig12Sizes are the message sizes of the DGX-1 communication study.
var fig12Sizes = []int64{16 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20}

// Fig12a reproduces the DGX-1 communication comparison: baseline double
// tree (B) vs overlapped double tree (C1) as data size grows. Paper
// headline: C1 exceeds B by 75% at 64MB, up to 80% at larger sizes.
func Fig12a() ([]*report.Table, error) {
	g := dgx1()
	t := report.New("Fig 12(a): overlapped tree (C1) vs baseline tree (B) on DGX-1",
		"size", "B time", "C1 time", "B bandwidth", "C1 bandwidth", "C1 speedup")
	for _, n := range fig12Sizes {
		base, err := collective.Run(collective.Config{Graph: g, Algorithm: collective.AlgDoubleTree, Bytes: n})
		if err != nil {
			return nil, err
		}
		over, err := collective.Run(collective.Config{Graph: g, Algorithm: collective.AlgDoubleTreeOverlap,
			Bytes: n, Chunks: base.Partition.NumChunks()})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			report.Bytes(n),
			report.Time(base.Total),
			report.Time(over.Total),
			report.GBps(base.Bandwidth()),
			report.GBps(over.Bandwidth()),
			report.Ratio(float64(base.Total)/float64(over.Total)),
		)
	}
	t.AddNote("paper: +75%% at 64MB, up to +80%% at larger sizes")
	return []*report.Table{t}, nil
}

// Fig12b compares the measured C1/B speedup against the alpha-beta model
// (Eq. 6 over Eq. 7). Paper headline: model closely matches the real-system
// measurement.
func Fig12b() ([]*report.Table, error) {
	g := dgx1()
	t := report.New("Fig 12(b): measured C1/B speedup vs cost model",
		"size", "measured", "model (Eq6/Eq7)", "relative error")
	for _, n := range fig12Sizes {
		base, err := collective.Run(collective.Config{Graph: g, Algorithm: collective.AlgDoubleTree, Bytes: n})
		if err != nil {
			return nil, err
		}
		over, err := collective.Run(collective.Config{Graph: g, Algorithm: collective.AlgDoubleTreeOverlap,
			Bytes: n, Chunks: base.Partition.NumChunks()})
		if err != nil {
			return nil, err
		}
		measured := float64(base.Total) / float64(over.Total)
		// The double tree carries N/2 per tree over P=8 nodes.
		p := costmodel.Params{
			Alpha: topology.NVLinkLatency.Seconds(),
			Beta:  1 / topology.NVLinkBandwidth,
			P:     8,
			N:     float64(n) / 2,
		}
		model := costmodel.SpeedupOverlappedVsTree(p)
		rel := (measured - model) / model
		if rel < 0 {
			rel = -rel
		}
		t.AddRow(report.Bytes(n), report.Ratio(measured), report.Ratio(model), report.Percent(rel))
	}
	t.AddNote("paper: modeling closely matches measurement on the 8-GPU system")
	return []*report.Table{t}, nil
}
