package experiments

import (
	"reflect"
	"testing"

	"ccube/internal/collective"
	"ccube/internal/scaleout"
)

// The parallel sweeps must be invisible in the output: any worker count
// yields bit-identical results to the serial reference path. These tests run
// under -race in CI (see the race job), which also proves the shared
// graph + schedule-cache accesses are properly synchronized.

func TestFig13ParallelMatchesSerial(t *testing.T) {
	pts := fig13Grid()
	// One batch column is enough to cover both bandwidths, every model and
	// every mode while keeping the doubled run affordable.
	var subset []fig13Point
	for _, p := range pts {
		if p.batch == fig13Batches[0] {
			subset = append(subset, p)
		}
	}
	serial, err := runFig13Grid(subset, 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	collective.DefaultCache.Clear() // parallel run must not inherit warm schedules
	parallel, err := runFig13Grid(subset, 8)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("cell count: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("cell %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
}

func TestExtFaultsParallelMatchesSerial(t *testing.T) {
	run := func(workers int) interface{} {
		old := Parallelism
		Parallelism = workers
		defer func() { Parallelism = old }()
		tables, err := ExtFaults()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tables
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("ext-faults tables differ between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

func TestScaleoutParallelMatchesSerial(t *testing.T) {
	cfg := fig14Config(16) // 4..16 nodes: small but exercises shared graphs
	cfg.Workers = 1
	serial, err := scaleout.Run(cfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	cfg.Workers = 8
	parallel, err := scaleout.Run(cfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("scale-out points differ between serial and parallel runs")
	}
}
