package experiments

import (
	"fmt"

	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/train"
)

// Fig16 reproduces the communication/computation pattern study on synthetic
// 8-layer models with identical totals but different per-layer
// distributions:
//
//	Case 1 — compute shrinks / communication grows with layer index (the
//	         common CNN shape): clean chaining, no bubbles;
//	Case 2 — compute grows with layer index: forward bubbles appear;
//	Case 3 — communication concentrated in early layers: the first forward
//	         layer's gradients turn around late.
func Fig16() ([]*report.Table, error) {
	t := report.New("Fig 16: chaining behavior per communication/computation pattern (C-Cube, low bandwidth)",
		"case", "pattern", "efficiency", "first-forward wait", "forward bubbles")
	descs := map[dnn.PatternCase]string{
		dnn.Case1: "compute down, comm up (CNN-like)",
		dnn.Case2: "compute up with layer index",
		dnn.Case3: "comm concentrated early",
	}
	for _, c := range []dnn.PatternCase{dnn.Case1, dnn.Case2, dnn.Case3} {
		res, err := train.Run(train.Config{
			Model: dnn.SyntheticPattern(c), Batch: 64, Graph: dgx1Low(),
			Mode: train.ModeCC, Chunks: 64,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("case %d", int(c)),
			descs[c],
			report.Percent(res.Normalized),
			report.Time(res.FirstForwardWait),
			report.Time(res.Bubbles),
		)
	}
	t.AddNote("paper: case 1 chains cleanly; case 2 develops bubbles; case 3 delays turnaround")
	return []*report.Table{t}, nil
}
