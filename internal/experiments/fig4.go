package experiments

import (
	"fmt"

	"ccube/internal/costmodel"
	"ccube/internal/report"
	"ccube/internal/topology"
)

// Fig4Params returns the alpha-beta parameters used for the model figures:
// NVLink-class bandwidth and microsecond-class latency (from the NCCL 2.4
// scaling post the paper cites as [25]).
func Fig4Params() costmodel.Params {
	return costmodel.Params{
		Alpha: topology.NVLinkLatency.Seconds(),
		Beta:  1 / topology.NVLinkBandwidth,
	}
}

// Fig4 reproduces the ring-vs-tree performance-model comparison: the ratio
// (1/T_tree)/(1/T_ring) = T_ring/T_tree over node count and message size.
// Ratios above 1 mean the tree algorithm wins. Paper headline: tree wins for
// small messages and at scale; ring wins by up to ~14% for large messages on
// few nodes.
func Fig4() ([]*report.Table, error) {
	sizes := []int64{16 << 10, 256 << 10, 1 << 20, 16 << 20, 64 << 20, 256 << 20}
	nodes := []int{8, 16, 32, 64, 128, 256, 512, 1024}

	cols := []string{"P \\ N"}
	for _, n := range sizes {
		cols = append(cols, report.Bytes(n))
	}
	t := report.New("Fig 4: T_ring / T_tree from the alpha-beta model (>1 = tree wins)", cols...)
	minRatio := 1.0
	for _, p := range nodes {
		row := []string{fmt.Sprintf("%d", p)}
		for _, n := range sizes {
			pr := Fig4Params()
			pr.P = p
			pr.N = float64(n)
			r := costmodel.RingVsTreeRatio(pr)
			if r < minRatio {
				minRatio = r
			}
			row = append(row, report.F2(r))
		}
		t.AddRow(row...)
	}
	t.AddNote("worst case for tree: ratio %.2f (paper: ring wins by up to ~14%%)", minRatio)
	return []*report.Table{t}, nil
}
