package experiments

import (
	"strings"
	"testing"

	"ccube/internal/train"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure regeneration in short mode")
	}
	old := Fig14MaxNodes
	Fig14MaxNodes = 64 // keep the scale-out sweep quick in tests
	defer func() { Fig14MaxNodes = old }()

	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tab := range tables {
				out := tab.Render()
				if len(out) == 0 || !strings.Contains(out, "\n") {
					t.Errorf("%s: empty render", e.ID)
				}
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tab.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig12a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig3HeadlineShape(t *testing.T) {
	g := dgx1()
	oneShot, calls1, err := GranularityBandwidth(g, "one-shot")
	if err != nil {
		t.Fatal(err)
	}
	if calls1 != 1 {
		t.Fatalf("one-shot used %d invocations", calls1)
	}
	layerWise, callsL, err := GranularityBandwidth(g, "layer-wise")
	if err != nil {
		t.Fatal(err)
	}
	if callsL < 40 {
		t.Fatalf("layer-wise used %d invocations, want one per ResNet-50 layer", callsL)
	}
	slicing, callsS, err := GranularityBandwidth(g, "slicing")
	if err != nil {
		t.Fatal(err)
	}
	if callsS <= callsL {
		t.Fatalf("slicing invocations %d <= layer-wise %d", callsS, callsL)
	}
	// Paper: layer-wise ~2x loss, slicing >4x loss.
	lw := oneShot / layerWise
	sl := oneShot / slicing
	if lw < 1.4 || lw > 3 {
		t.Errorf("layer-wise loss %.2fx, paper reports ~2x", lw)
	}
	if sl < 3 {
		t.Errorf("slicing loss %.2fx, paper reports >4x", sl)
	}
	if sl <= lw {
		t.Errorf("slicing loss %.2fx not worse than layer-wise %.2fx", sl, lw)
	}

	if _, _, err := GranularityBandwidth(g, "bogus"); err == nil {
		t.Error("unknown granularity accepted")
	}
}

func TestFig13SweepHeadlines(t *testing.T) {
	cells, err := Fig13Sweep()
	if err != nil {
		t.Fatal(err)
	}
	// 2 bandwidths x 3 models x 3 batches x 5 modes.
	if len(cells) != 2*3*3*5 {
		t.Fatalf("cells = %d, want 90", len(cells))
	}
	type key struct {
		bw, model string
		batch     int
	}
	rows := map[key]map[train.Mode]*train.Result{}
	for _, c := range cells {
		k := key{c.Bandwidth, c.Model, c.Batch}
		if rows[k] == nil {
			rows[k] = map[train.Mode]*train.Result{}
		}
		rows[k][c.Mode] = c.Result
	}
	var ccOverBMax, c1OverBSum float64
	n := 0
	for k, r := range rows {
		ccOverB := float64(r[train.ModeB].IterTime) / float64(r[train.ModeCC].IterTime)
		c1OverB := float64(r[train.ModeB].IterTime) / float64(r[train.ModeC1].IterTime)
		if ccOverB < 1 {
			t.Errorf("%v: CC slower than B (%.3f)", k, ccOverB)
		}
		if ccOverB > ccOverBMax {
			ccOverBMax = ccOverB
		}
		c1OverBSum += c1OverB
		n++
	}
	// Paper: CC up to +61% over B; C1 ~+10% on average.
	if ccOverBMax < 1.2 {
		t.Errorf("max CC/B speedup %.2f, want substantial (paper: up to 1.61)", ccOverBMax)
	}
	if avg := c1OverBSum / float64(n); avg < 1.02 || avg > 1.4 {
		t.Errorf("avg C1/B speedup %.3f, paper reports ~1.10", avg)
	}
}
