package experiments

import (
	"ccube/internal/collective"
	"ccube/internal/report"
	"ccube/internal/workload"
)

// Fig1 reproduces the motivation figure: the fraction of per-iteration
// execution time spent in (NCCL ring) AllReduce for the MLPerf workloads on
// an 8-GPU DGX-1. Paper headline: up to ~60% for Single Stage Detector,
// ~10% for Neural Collaborative Filtering.
func Fig1() ([]*report.Table, error) {
	ratios, err := workload.SuiteRatios(dgx1(), collective.AlgRing)
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 1: AllReduce ratio of execution time (8-GPU DGX-1, ring AllReduce)",
		"workload", "gradients", "compute/iter", "allreduce/iter", "allreduce fraction")
	for _, r := range ratios {
		t.AddRow(
			r.Profile.Name,
			report.Bytes(r.Profile.GradientBytes),
			report.Time(r.Profile.ComputeTime),
			report.Time(r.CommTime),
			report.Percent(r.Fraction),
		)
	}
	t.AddNote("paper: SSD up to ~60%%, NCF ~10%%; profiles calibrated per DESIGN.md §2")
	return []*report.Table{t}, nil
}
