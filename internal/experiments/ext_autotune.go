package experiments

import (
	"fmt"

	"ccube/internal/autotune"
	"ccube/internal/report"
	"ccube/internal/topology"
)

// ExtAutotune regenerates the algorithm-selection matrix: which AllReduce
// wins at each message size on each platform, under both objectives. This
// is the adaptation the paper's related work calls for (Faraj & Yuan) with
// the simulator as the tuner.
func ExtAutotune() ([]*report.Table, error) {
	sizes := []int64{4 << 10, 64 << 10, 1 << 20, 16 << 20, 64 << 20, 256 << 20}
	platforms := []struct {
		name string
		g    *topology.Graph
	}{
		{"dgx1-high", dgx1()},
		{"dgx1-low", dgx1Low()},
		{"dgx2", topology.DGX2()},
	}

	t := report.New("Extension: simulated algorithm auto-tuning (winner per size/objective)",
		"platform", "size", "latency winner", "total", "turnaround winner", "turnaround")
	for _, p := range platforms {
		for _, n := range sizes {
			lat, err := autotune.Best(p.g, n, autotune.Latency, false)
			if err != nil {
				return nil, fmt.Errorf("autotune %s %d: %w", p.name, n, err)
			}
			turn, err := autotune.Best(p.g, n, autotune.Turnaround, false)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.name, report.Bytes(n),
				lat.Algorithm.String(), report.Time(lat.Total),
				turn.Algorithm.String(), report.Time(turn.Turnaround))
		}
	}
	t.AddNote("ranking by simulation replaces NCCL's hand-tuned size thresholds on the modeled machine")

	// The chaining consumer's view: in-order algorithms only.
	io := report.New("Auto-tuning under the gradient-queuing constraint (in-order algorithms only, dgx1-high)",
		"size", "winner", "turnaround", "vs unconstrained winner")
	for _, n := range sizes {
		all, err := autotune.Best(dgx1(), n, autotune.Turnaround, false)
		if err != nil {
			return nil, err
		}
		constrained, err := autotune.Best(dgx1(), n, autotune.Turnaround, true)
		if err != nil {
			return nil, err
		}
		io.AddRow(report.Bytes(n), constrained.Algorithm.String(),
			report.Time(constrained.Turnaround),
			report.Ratio(float64(constrained.Turnaround)/float64(all.Turnaround)))
	}
	io.AddNote("Observation #3: ring and halving-doubling cannot feed the gradient queue")
	return []*report.Table{t, io}, nil
}
