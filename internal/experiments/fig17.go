package experiments

import (
	"fmt"

	"ccube/internal/des"
	"ccube/internal/dnn"
	"ccube/internal/report"
)

// Fig17 reproduces the ResNet-50 per-layer profile: parameter size grows
// with layer index while per-layer computation time shrinks — the Case-1
// pattern that makes C-Cube's forward chaining effective. Layers are
// bucketed into eighths of the network for a readable table; the underlying
// per-layer data is exact.
func Fig17() ([]*report.Table, error) {
	m := dnn.ResNet50()
	dev := dnn.V100()
	const batch = 64
	const buckets = 8

	t := report.New("Fig 17: ResNet-50 per-layer parameter size vs computation time (batch 64)",
		"layers", "parameters", "gradient bytes", "fwd compute", "compute per grad MB")
	n := len(m.Layers)
	for b := 0; b < buckets; b++ {
		lo := b * n / buckets
		hi := (b + 1) * n / buckets
		var params int64
		var fwdTime des.Time
		for _, l := range m.Layers[lo:hi] {
			params += l.Params
			fwdTime += dev.FwdTime(l, batch)
		}
		gradMB := float64(params*dnn.BytesPerParam) / (1 << 20)
		t.AddRow(
			fmt.Sprintf("%d-%d", lo+1, hi),
			fmt.Sprintf("%.2fM", float64(params)/1e6),
			report.Bytes(params*dnn.BytesPerParam),
			report.Time(fwdTime),
			fmt.Sprintf("%.2fms/MB", fwdTime.Millis()/gradMB),
		)
	}
	t.AddNote("paper: parameter size increases with layer index, computation time decreases")
	t.AddNote("the chaining-relevant ratio — compute backing each gradient byte — falls ~100x across the network")
	t.AddNote("total: %.1fM parameters, %s gradients",
		float64(m.TotalParams())/1e6, report.Bytes(m.GradientBytes()))
	return []*report.Table{t}, nil
}
