package experiments

import (
	"fmt"

	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/train"
)

// ExtTransformer is an extension beyond the paper's CNN-only evaluation:
// C-Cube on a BERT-Base transformer. Transformers invert part of the CNN
// story — the embedding table is the *first* layer the next iteration's
// forward pass needs, yet it carries the single largest gradient block at
// nearly zero compute: exactly the paper's Case-3 hazard (Fig. 16). The
// uniform encoder blocks behind it chain cleanly, so C-Cube still wins, but
// the first-forward wait is a visibly larger share than on ResNet-50.
func ExtTransformer() ([]*report.Table, error) {
	t := report.New("Extension: C-Cube on BERT-Base (batch 32/GPU, 8-GPU DGX-1)",
		"bandwidth", "mode", "iteration", "normalized perf", "first fwd wait")
	for _, bw := range []string{"low", "high"} {
		g := dgx1()
		if bw == "low" {
			g = dgx1Low()
		}
		for _, m := range train.Modes() {
			res, err := train.Run(train.Config{
				Model: dnn.BERTBase(), Batch: 32, Graph: g, Mode: m,
			})
			if err != nil {
				return nil, fmt.Errorf("bert %s %s: %w", bw, m, err)
			}
			t.AddRow(bw, string(m), report.Time(res.IterTime),
				report.F2(res.Normalized), report.Time(res.FirstForwardWait))
		}
	}

	// Quantify the Case-3 hazard: compare the share of the standalone
	// AllReduce that the first forward layer waits for.
	cmp := report.New("Case-3 hazard: first-forward wait as a share of AllReduce time (CC, low bandwidth)",
		"model", "first fwd wait", "comm time", "share")
	for _, model := range []dnn.Model{dnn.ResNet50(), dnn.BERTBase()} {
		res, err := train.Run(train.Config{
			Model: model, Batch: 32, Graph: dgx1Low(), Mode: train.ModeCC,
		})
		if err != nil {
			return nil, err
		}
		cmp.AddRow(model.Name, report.Time(res.FirstForwardWait), report.Time(res.CommTime),
			report.Percent(float64(res.FirstForwardWait)/float64(res.CommTime)))
	}
	cmp.AddNote("BERT's embedding gradients (first dequeued, ~22%% of bytes) push the first forward step back")
	return []*report.Table{t, cmp}, nil
}
