package experiments

import (
	"fmt"

	"ccube/internal/collective"
	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/topology"
	"ccube/internal/train"
)

// ExtAblation consolidates the design-choice ablations of DESIGN.md §5 into
// one regenerable table: what each ingredient of C-Cube buys, measured by
// removing it.
func ExtAblation() ([]*report.Table, error) {
	t := report.New("Extension: design-choice ablations",
		"ablation", "variant", "metric", "value")

	// 1. Chunk count: Eq. 4 optimum vs fixed choices (64MB C-Cube comm).
	opt, err := collective.Run(collective.Config{
		Graph: dgx1(), Algorithm: collective.AlgDoubleTreeOverlap, Bytes: 64 << 20})
	if err != nil {
		return nil, err
	}
	t.AddRow("chunk count", fmt.Sprintf("K_opt = %d", opt.Partition.NumChunks()),
		"AllReduce time", report.Time(opt.Total))
	for _, k := range []int{2, 8, 512} {
		res, err := collective.Run(collective.Config{
			Graph: dgx1(), Algorithm: collective.AlgDoubleTreeOverlap,
			Bytes: 64 << 20, Chunks: k})
		if err != nil {
			return nil, err
		}
		t.AddRow("chunk count", fmt.Sprintf("fixed K = %d", k),
			"AllReduce time", fmt.Sprintf("%v (%s)", res.Total,
				report.Ratio(float64(res.Total)/float64(opt.Total))))
	}

	// 2. Detour vs host PCIe path, per 1MB hop on a missing edge.
	cfg := topology.DefaultDGX1Config()
	cfg.IncludePCIe = true
	gp := topology.DGX1(cfg)
	nv := gp.Channel(gp.ChannelsBetween(2, 0)[0])
	pcie := gp.Channel(gp.ChannelsBetween(2, 4)[0])
	detourCost := 2 * nv.TransferTime(1<<20)
	hostCost := pcie.TransferTime(1 << 20)
	t.AddRow("missing edge GPU2-GPU4", "NVLink detour via GPU0", "1MB hop", report.Time(detourCost))
	t.AddRow("missing edge GPU2-GPU4", "host PCIe path", "1MB hop",
		fmt.Sprintf("%v (%s worse)", hostCost, report.Ratio(float64(hostCost)/float64(detourCost))))

	// 3. Single overlapped tree (Fig. 6(c)) vs C-Cube double tree (Fig. 6(d)).
	single, err := collective.Run(collective.Config{
		Graph: dgx1(), Algorithm: collective.AlgTreeOverlap, Bytes: 64 << 20})
	if err != nil {
		return nil, err
	}
	t.AddRow("tree organization", "single overlapped tree", "AllReduce time", report.Time(single.Total))
	t.AddRow("tree organization", "C-Cube double tree", "AllReduce time",
		fmt.Sprintf("%v (%s faster)", opt.Total, report.Ratio(float64(single.Total)/float64(opt.Total))))

	// 4. Forward-overlap (C-Cube) vs backward-overlap (DDP buckets).
	ddp, err := train.RunBackwardOverlap(train.Config{
		Model: dnn.VGG16(), Batch: 32, Graph: dgx1Low()})
	if err != nil {
		return nil, err
	}
	cc, err := train.Run(train.Config{
		Model: dnn.VGG16(), Batch: 32, Graph: dgx1Low(), Mode: train.ModeCC})
	if err != nil {
		return nil, err
	}
	t.AddRow("overlap direction", "backward (DDP buckets)", "iteration", report.Time(ddp.IterTime))
	t.AddRow("overlap direction", "forward (C-Cube)", "iteration",
		fmt.Sprintf("%v (%s faster)", cc.IterTime, report.Ratio(float64(ddp.IterTime)/float64(cc.IterTime))))

	// 5. Dedicated vs shared channels for the overlapped double tree.
	shared, err := sharedChannelOverlap()
	if err != nil {
		return nil, err
	}
	t.AddRow("channel assignment", "duplicated NVLink pairs (dedicated)", "overlap speedup over B",
		report.Ratio(dedicatedOverlapSpeedup(opt)))
	t.AddRow("channel assignment", "single links (forced sharing)", "overlap speedup over B",
		report.Ratio(shared))
	t.AddNote("each row removes one design ingredient; values regenerate deterministically")
	return []*report.Table{t}, nil
}

func dedicatedOverlapSpeedup(over *collective.Result) float64 {
	base, err := collective.Run(collective.Config{
		Graph: dgx1(), Algorithm: collective.AlgDoubleTree, Bytes: 64 << 20})
	if err != nil {
		return 0
	}
	return float64(base.Total) / float64(over.Total)
}

// sharedChannelOverlap measures the overlap benefit when the two trees must
// share channels (a single-link mesh-cube), demonstrating the paper's
// §III-B impossibility argument.
func sharedChannelOverlap() (float64, error) {
	g := topology.NewGraph()
	for i := 0; i < 8; i++ {
		g.AddNode(fmt.Sprintf("G%d", i), topology.GPU)
	}
	links := [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
	}
	for _, l := range links {
		g.AddBidi(topology.NodeID(l[0]), topology.NodeID(l[1]),
			topology.NVLinkBandwidth, topology.NVLinkLatency, "nvlink")
	}
	t1, t2 := collective.DGX1Trees()
	base, err := collective.Run(collective.Config{
		Graph: g, Algorithm: collective.AlgDoubleTree, Bytes: 64 << 20,
		Trees: []collective.Tree{t1, t2}, AllowSharedChannels: true})
	if err != nil {
		return 0, err
	}
	over, err := collective.Run(collective.Config{
		Graph: g, Algorithm: collective.AlgDoubleTreeOverlap, Bytes: 64 << 20,
		Trees: []collective.Tree{t1, t2}, AllowSharedChannels: true})
	if err != nil {
		return 0, err
	}
	return float64(base.Total) / float64(over.Total), nil
}
