package experiments

import (
	"fmt"

	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/train"
)

// Fig15 reproduces the detour-overhead study: per-GPU normalized
// performance (inverse iteration time, normalized to the fastest GPU) under
// C-Cube at batch 64 with high bandwidth. GPU0 and GPU1 run the static
// detour-forwarding kernels. Paper headline: detour nodes lose only 3-4%.
func Fig15() ([]*report.Table, error) {
	res, err := train.Run(train.Config{
		Model: dnn.ResNet50(), Batch: 64, Graph: dgx1(), Mode: train.ModeCC,
	})
	if err != nil {
		return nil, err
	}
	var best float64
	for _, tm := range res.PerGPU {
		perf := 1 / float64(tm)
		if perf > best {
			best = perf
		}
	}
	t := report.New("Fig 15: per-GPU normalized performance under C-Cube (ResNet-50, batch 64, high bandwidth)",
		"gpu", "role", "iteration time", "normalized performance")
	var worstDetour float64 = 1
	for i, tm := range res.PerGPU {
		role := "compute"
		if i <= 1 {
			role = "detour forwarding"
		}
		norm := (1 / float64(tm)) / best
		if i <= 1 && norm < worstDetour {
			worstDetour = norm
		}
		t.AddRow(fmt.Sprintf("GPU%d", i), role, report.Time(tm), report.F2(norm))
	}
	t.AddNote("detour-node loss: %s (paper: 3-4%%)", report.Percent(1-worstDetour))
	return []*report.Table{t}, nil
}
