package experiments

import (
	"strconv"
	"strings"
	"testing"

	"ccube/internal/collective"
	"ccube/internal/topology"
)

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestExtDGX2NoDetours(t *testing.T) {
	// The crossbar must need no detour routes for the double tree, and the
	// overlap win must match the DGX-1's (~1.76x at 64MB).
	g := topology.DGX2()
	sched, err := collective.Build(collective.Config{
		Graph: g, Algorithm: collective.AlgDoubleTreeOverlap, Bytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sched.DetourNodes()); n != 0 {
		t.Fatalf("DGX-2 double tree uses %d detours, want 0", n)
	}
	base, err := collective.Run(collective.Config{
		Graph: g, Algorithm: collective.AlgDoubleTree, Bytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	over, err := sched.Execute()
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(base.Total) / float64(over.Total)
	if speedup < 1.6 || speedup > 2.0 {
		t.Errorf("DGX-2 overlap speedup %.2f, want ~1.76", speedup)
	}
}

func TestExtHierTables(t *testing.T) {
	tables, err := ExtHierarchical()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2 (comm + training)", len(tables))
	}
	out := tables[0].Render()
	// The chained column must show a multi-x speedup at every box count.
	if !strings.Contains(out, "2.") {
		t.Errorf("hierarchical speedups missing from:\n%s", out)
	}
}

func TestExtTransformerCase3Hazard(t *testing.T) {
	tables, err := ExtTransformer()
	if err != nil {
		t.Fatal(err)
	}
	cmp := tables[1]
	if len(cmp.Rows) != 2 {
		t.Fatalf("comparison rows = %d", len(cmp.Rows))
	}
	// BERT's first-forward share (row 1, col 3) must exceed ResNet's (row 0).
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", s, err)
		}
		return v
	}
	resnet := parse(cmp.Rows[0][3])
	bert := parse(cmp.Rows[1][3])
	if bert <= resnet {
		t.Errorf("BERT first-forward share %.1f%% <= ResNet %.1f%%", bert, resnet)
	}
}
