package experiments

import (
	"fmt"

	"ccube/internal/collective"
	"ccube/internal/des"
	"ccube/internal/fault"
	"ccube/internal/report"
	"ccube/internal/sweep"
	"ccube/internal/topology"
)

// ExtChurn puts the two fault-response modes under sustained link churn on
// scale-out fabrics: every epoch a seeded set of in-use physical links dies
// mid-collective, the run either adapts in place (incremental schedule
// repair, checkpoint/resume) or relaunches from scratch, and the fabric then
// recovers exactly. The figure of merit is the throughput floor — the worst
// epoch a training job experiences — as a fraction of the healthy baseline.
// Adaptation keeps the already-executed prefix and pays only the repair
// latency, so its floor should dominate relaunching at every grid point; the
// gap widens with repair latency (relaunch pays it too, plus the forfeited
// virtual time) and with the per-epoch failure count.
// extChurnRow is one rendered table row, computed inside a sweep cell.
type extChurnRow struct {
	nodes     int
	alg       string
	fails     int
	latency   string
	relFloor  string
	adpFloor  string
	floorGain string
	adpRecov  string
	adapted   int
	retries   int
}

// extChurnCell is one grid point of the churn sweep.
type extChurnCell struct {
	nodes   int
	alg     collective.Algorithm
	fails   int
	latency des.Time
}

// ChurnFloor holds both modes' churn reports for one configuration; the
// bench harness uses it to assert the adapt floor dominates.
type ChurnFloor struct {
	Nodes    int
	Alg      collective.Algorithm
	Fails    int
	Latency  des.Time
	Relaunch *fault.ChurnReport
	Adapt    *fault.ChurnReport
}

// RunChurnPoint runs one churn grid point in both modes on a private
// scale-out fabric. Shared between the experiment table and the bench
// harness's floor assertions.
func RunChurnPoint(nodes int, alg collective.Algorithm, fails int, latency des.Time) (*ChurnFloor, error) {
	hcfg := topology.DefaultHierarchyConfig(nodes)
	g := topology.Hierarchy(hcfg)
	cfg := collective.Config{Graph: g, Algorithm: alg, Bytes: 1 << 20}
	if alg == collective.AlgRing {
		identity := make([]int, nodes)
		for i := range identity {
			identity[i] = i
		}
		cfg.RingOrders = [][]int{identity, identity}
	} else {
		cfg.Chunks = 8
	}
	out := &ChurnFloor{Nodes: nodes, Alg: alg, Fails: fails, Latency: latency}
	for _, mode := range []fault.Mode{fault.ModeRelaunch, fault.ModeAdapt} {
		rep, err := fault.RunChurn(fault.ChurnConfig{
			Collective:    cfg,
			Seed:          7,
			Epochs:        3,
			FailLinks:     fails,
			RepairLatency: latency,
			Mode:          mode,
			UsedLinksOnly: true,
		})
		if err != nil {
			return nil, fmt.Errorf("churn P=%d %v fails=%d %v: %w", nodes, alg, fails, mode, err)
		}
		if mode == fault.ModeAdapt {
			out.Adapt = rep
		} else {
			out.Relaunch = rep
		}
	}
	return out, nil
}

func ExtChurn() ([]*report.Table, error) {
	var cells []extChurnCell
	for _, nodes := range []int{16, 64} {
		for _, alg := range []collective.Algorithm{
			collective.AlgRing,
			collective.AlgDoubleTree,
			collective.AlgDoubleTreeOverlap,
		} {
			for _, fails := range []int{1, 2} {
				for _, latency := range []des.Time{50 * des.Microsecond, 500 * des.Microsecond} {
					cells = append(cells, extChurnCell{nodes, alg, fails, latency})
				}
			}
		}
	}
	t := report.New("Extension: throughput floor under sustained link churn — adapt-in-place vs full relaunch (1MB, 3 epochs)",
		"nodes", "algorithm", "fails/epoch", "repair latency",
		"relaunch floor", "adapt floor", "adapt/relaunch", "adapt recovered BW", "adapted", "retries")
	// One sweep cell per grid point: churn mutates topology health, so every
	// cell builds a private Hierarchy fabric and runs both modes on it.
	rows, err := sweep.Grid(len(cells), Parallelism, func(i int) ([]extChurnRow, error) {
		c := cells[i]
		fl, err := RunChurnPoint(c.nodes, c.alg, c.fails, c.latency)
		if err != nil {
			return nil, err
		}
		gain := 0.0
		if fl.Relaunch.FloorThroughput > 0 {
			gain = fl.Adapt.FloorThroughput / fl.Relaunch.FloorThroughput
		}
		return []extChurnRow{{
			nodes: c.nodes, alg: c.alg.String(), fails: c.fails,
			latency:   report.Time(c.latency),
			relFloor:  report.GBps(fl.Relaunch.FloorThroughput),
			adpFloor:  report.GBps(fl.Adapt.FloorThroughput),
			floorGain: report.Ratio(gain),
			adpRecov:  report.Percent(fl.Adapt.RecoveredBandwidth()),
			adapted:   fl.Adapt.Adapted,
			retries:   fl.Adapt.Retries,
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, col := range rows {
		for _, r := range col {
			t.AddRow(fmt.Sprintf("%d", r.nodes), r.alg, fmt.Sprintf("%d", r.fails), r.latency,
				r.relFloor, r.adpFloor, r.floorGain, r.adpRecov,
				fmt.Sprintf("%d", r.adapted), fmt.Sprintf("%d", r.retries))
		}
	}
	t.AddNote("failures are drawn from links the schedule rides, so every epoch exercises the fault response")
	t.AddNote("adapt keeps the executed prefix and patches the live schedule; relaunch forfeits it — the adapt floor dominates, and the gap grows with repair latency and fail count")
	t.AddNote("fabric health is fingerprint-verified after every epoch: exact recovery is part of the contract")
	return []*report.Table{t}, nil
}
