package experiments

import (
	"fmt"

	"ccube/internal/collective"
	"ccube/internal/des"
	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/topology"
)

// InvocationOverhead models the fixed host-side cost of each separate NCCL
// AllReduce invocation (kernel launch, stream synchronization, argument
// marshalling). One-shot pays it once; layer-wise and slicing pay it per
// call — the reason the paper keeps the one-shot approach (§II-B, Fig. 3).
const InvocationOverhead = 25 * des.Microsecond

// SliceBytes is the fine-grain slicing granularity of the Fig. 3 comparison.
const SliceBytes = 512 << 10

// invocationPlan returns the per-invocation message sizes for a granularity.
func invocationPlan(granularity string, layerBytes []int64) ([]int64, error) {
	switch granularity {
	case "one-shot":
		var total int64
		for _, b := range layerBytes {
			total += b
		}
		return []int64{total}, nil
	case "layer-wise":
		out := make([]int64, 0, len(layerBytes))
		for _, b := range layerBytes {
			if b > 0 {
				out = append(out, b)
			}
		}
		return out, nil
	case "slicing":
		var out []int64
		for _, b := range layerBytes {
			for b > SliceBytes {
				out = append(out, SliceBytes)
				b -= SliceBytes
			}
			if b > 0 {
				out = append(out, b)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("experiments: unknown granularity %q", granularity)
	}
}

// GranularityBandwidth runs AllReduce at a given invocation granularity over
// the ResNet-50 parameter layout and returns the achieved bandwidth
// (total bytes / total time, invocations serialized) and the call count.
func GranularityBandwidth(g *topology.Graph, granularity string) (bw float64, calls int, err error) {
	plan, err := invocationPlan(granularity, dnn.ResNet50().LayerBytes())
	if err != nil {
		return 0, 0, err
	}
	var total des.Time
	var bytes int64
	for _, n := range plan {
		res, err := collective.Run(collective.Config{
			Graph:     g,
			Algorithm: collective.AlgRing,
			Bytes:     n,
		})
		if err != nil {
			return 0, 0, err
		}
		total += res.Total + InvocationOverhead
		bytes += n
	}
	return float64(bytes) / total.Seconds(), len(plan), nil
}

// Fig3 reproduces the invocation-granularity comparison: one-shot vs
// layer-wise vs slicing NCCL AllReduce with ResNet-50's parameter sizes.
// Paper headline: layer-wise loses ~2x, slicing over 4x versus one-shot.
func Fig3() ([]*report.Table, error) {
	g := dgx1()
	t := report.New("Fig 3: AllReduce bandwidth by invocation granularity (ResNet-50 parameters, DGX-1 ring)",
		"granularity", "invocations", "achieved bandwidth", "normalized to one-shot")
	oneShot, _, err := GranularityBandwidth(g, "one-shot")
	if err != nil {
		return nil, err
	}
	for _, gran := range []string{"one-shot", "layer-wise", "slicing"} {
		bw, calls, err := GranularityBandwidth(g, gran)
		if err != nil {
			return nil, err
		}
		t.AddRow(gran, fmt.Sprintf("%d", calls), report.GBps(bw), report.F2(bw/oneShot))
	}
	t.AddNote("paper: layer-wise ~2x loss, slicing >4x loss vs one-shot")
	t.AddNote("per-invocation overhead modeled as %v (launch + host sync)", InvocationOverhead)
	return []*report.Table{t}, nil
}
