// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigN function runs the relevant models/simulations and
// returns the same rows or series the paper reports, annotated with the
// paper's headline numbers for side-by-side comparison (EXPERIMENTS.md
// records the outcome of one full run).
package experiments

import (
	"fmt"
	"time"

	"ccube/internal/metrics"
	"ccube/internal/report"
	"ccube/internal/topology"
)

// Experiment is one reproducible figure/table.
type Experiment struct {
	ID          string // e.g. "fig12a"
	Description string
	Run         func() ([]*report.Table, error)
}

var (
	mExpRuns = metrics.Default.CounterVec("experiments_runs_total",
		"experiment executions", "id")
	mExpSeconds = metrics.Default.GaugeVec("experiments_last_run_seconds",
		"wall-clock seconds of the experiment's last run", "id")
)

// figID names one of the fixed experiments (fig13, fig14, ...). Metric
// labels derive from this defined type so the experiments_* series
// cardinality is bounded by the experiment registry (enforced by the
// metrics-cardinality lint rule).
type figID string

// timed wraps an experiment runner with per-experiment wall-time metrics.
func timed(id figID, run func() ([]*report.Table, error)) func() ([]*report.Table, error) {
	return func() ([]*report.Table, error) {
		start := time.Now()
		tables, err := run()
		if err == nil && metrics.Default.Enabled() {
			mExpRuns.With(string(id)).Inc()
			mExpSeconds.With(string(id)).Set(time.Since(start).Seconds())
		}
		return tables, err
	}
}

// All returns every experiment in paper order.
func All() []Experiment {
	list := []Experiment{
		{"fig1", "AllReduce fraction of execution time (MLPerf suite, 8-GPU DGX-1)", Fig1},
		{"fig3", "One-shot vs layer-wise vs slicing AllReduce (ResNet-50 parameters)", Fig3},
		{"fig4", "Ring vs tree AllReduce cost-model ratio over P and N", Fig4},
		{"fig12a", "Overlapped tree (C1) vs baseline (B) communication on DGX-1", Fig12a},
		{"fig12b", "Measured C1/B speedup vs alpha-beta model", Fig12b},
		{"fig13", "Normalized training performance: B/C1/C2/R/CC across models, batches, bandwidth", Fig13},
		{"fig14a", "Scale-out: C1 vs ring communication ratio (4-1024 nodes)", Fig14a},
		{"fig14b", "Scale-out: gradient turnaround speedup of C1 over B", Fig14b},
		{"fig15", "Detour-node overhead: per-GPU normalized performance", Fig15},
		{"fig16", "Communication/computation patterns: chaining behavior per case", Fig16},
		{"fig17", "ResNet-50 per-layer parameter size vs computation time", Fig17},
		{"ext-dgx2", "Extension (paper §VI future work): C-Cube on a DGX-2/NVSwitch crossbar", ExtDGX2},
		{"ext-validate", "Extension: simulator vs closed-form cost models, all algorithms", ExtValidate},
		{"ext-hier", "Extension: hierarchical C-Cube across multiple DGX-1 boxes", ExtHierarchical},
		{"ext-transformer", "Extension: C-Cube on a BERT-Base transformer (Case-3 embedding hazard)", ExtTransformer},
		{"ext-ablation", "Extension: design-choice ablations (chunking, detours, trees, overlap direction)", ExtAblation},
		{"ext-autotune", "Extension: simulated algorithm auto-tuning across sizes and platforms", ExtAutotune},
		{"ext-hetero", "Extension: algorithm sensitivity to a degraded NVLink", ExtHetero},
		{"ext-faults", "Extension: perf loss vs failed links, schedules repaired via detours", ExtFaults},
		{"ext-interference", "Extension: two concurrent collectives sharing one DGX-1", ExtInterference},
		{"ext-churn", "Extension: sustained link churn — adapt-in-place vs full relaunch throughput floor", ExtChurn},
		{"ext-synth", "Extension: synthesized schedules vs built-ins on regular and irregular fabrics", ExtSynth},
	}
	for i := range list {
		list[i].Run = timed(figID(list[i].ID), list[i].Run)
	}
	return list
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// dgx1 returns the evaluation platform in its high-bandwidth configuration.
func dgx1() *topology.Graph { return topology.DGX1(topology.DefaultDGX1Config()) }

// dgx1Low returns the low-bandwidth configuration (paper: AllReduce kernels
// given 4x fewer threads, modeling a PCIe-class interconnect).
func dgx1Low() *topology.Graph {
	cfg := topology.DefaultDGX1Config()
	cfg.LowBandwidth = true
	return topology.DGX1(cfg)
}
