package experiments

import (
	"fmt"

	"ccube/internal/collective"
	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/topology"
	"ccube/internal/train"
)

// ExtHierarchical is an extension beyond the paper: composing C-Cube's
// chaining across a multi-node cluster. A hierarchical AllReduce runs three
// tree phases (intra-node reduce, inter-node AllReduce over the fabric,
// intra-node broadcast); the tree's in-order property lets each chunk flow
// through all three levels without waiting for phase boundaries — the same
// observation the paper applies inside one box, applied recursively.
func ExtHierarchical() ([]*report.Table, error) {
	t := report.New("Extension: hierarchical C-Cube across DGX-1 boxes (64MB)",
		"boxes", "barriered", "chained", "speedup", "turnaround (barriered)", "turnaround (chained)")
	for _, boxes := range []int{2, 4, 8} {
		mn, err := topology.BuildMultiNode(topology.DefaultMultiNodeConfig(boxes))
		if err != nil {
			return nil, err
		}
		base, err := collective.RunHierarchical(collective.HierarchicalConfig{
			Cluster: mn, Bytes: 64 << 20, Chained: false,
		})
		if err != nil {
			return nil, fmt.Errorf("hier %d boxes barriered: %w", boxes, err)
		}
		mn2, err := topology.BuildMultiNode(topology.DefaultMultiNodeConfig(boxes))
		if err != nil {
			return nil, err
		}
		chained, err := collective.RunHierarchical(collective.HierarchicalConfig{
			Cluster: mn2, Bytes: 64 << 20, Chained: true,
		})
		if err != nil {
			return nil, fmt.Errorf("hier %d boxes chained: %w", boxes, err)
		}
		t.AddRow(
			fmt.Sprintf("%d", boxes),
			report.Time(base.Total),
			report.Time(chained.Total),
			report.Ratio(float64(base.Total)/float64(chained.Total)),
			report.Time(base.Turnaround),
			report.Time(chained.Turnaround),
		)
	}
	t.AddNote("chaining composes across levels: a chunk climbs box tree -> fabric tree -> descends, never waiting for a phase to drain")

	// End-to-end training on the cluster: the fabric is an order of
	// magnitude slower than NVLink, so hierarchical chaining decides
	// whether the cluster scales.
	tt := report.New("Extension: ResNet-50 training across 4 DGX-1 boxes (batch 64/GPU, 32-way data parallel)",
		"mode", "iteration", "normalized perf")
	mn, err := topology.BuildMultiNode(topology.DefaultMultiNodeConfig(4))
	if err != nil {
		return nil, err
	}
	for _, m := range []train.Mode{train.ModeB, train.ModeC1, train.ModeC2, train.ModeCC} {
		res, err := train.Run(train.Config{
			Model: dnn.ResNet50(), Batch: 64, Cluster: mn, Mode: m,
		})
		if err != nil {
			return nil, fmt.Errorf("hier train %s: %w", m, err)
		}
		tt.AddRow(string(m), report.Time(res.IterTime), report.F2(res.Normalized))
	}
	tt.AddNote("B/C2 run the hierarchy phase-barriered; C1/CC chain chunks through all three levels")
	return []*report.Table{t, tt}, nil
}
