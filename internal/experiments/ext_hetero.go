package experiments

import (
	"fmt"

	"ccube/internal/collective"
	"ccube/internal/des"
	"ccube/internal/report"
	"ccube/internal/sweep"
	"ccube/internal/topology"
)

// ExtHetero studies heterogeneous interconnect bandwidth (the paper's
// related work cites Themis on exactly this problem): one NVLink of the
// mesh-cube is degraded, and each algorithm's sensitivity is measured.
// Pipelined schedules bottleneck on their slowest hop, so the ring, the
// double tree, and C-Cube all slow down by roughly the degradation factor —
// the ring because every chunk traverses every link, the trees because the
// degraded pair carries tree edges. Halving-doubling is the least
// sensitive: the degraded channel serves only one of its log2(P) exchange
// dimensions, so only the blocks crossing that dimension stall.
func ExtHetero() ([]*report.Table, error) {
	t := report.New("Extension: sensitivity to one degraded link (GPU0-GPU1 at 1/4 bandwidth, 64MB)",
		"algorithm", "healthy", "degraded", "slowdown")
	algs := []collective.Algorithm{
		collective.AlgRing,
		collective.AlgHalvingDoubling,
		collective.AlgDoubleTree,
		collective.AlgDoubleTreeOverlap,
	}
	healthyG := dgx1()
	degradedG := degradedDGX1()
	// Both graphs are shared read-only across cells; one cell per algorithm,
	// rows assembled in algorithm order.
	type heteroRow struct{ healthy, degraded *collective.Result }
	rows, err := sweep.Grid(len(algs), Parallelism, func(i int) (heteroRow, error) {
		alg := algs[i]
		healthy, err := collective.Run(collective.Config{
			Graph: healthyG, Algorithm: alg, Bytes: 64 << 20})
		if err != nil {
			return heteroRow{}, fmt.Errorf("hetero healthy %v: %w", alg, err)
		}
		degraded, err := collective.Run(collective.Config{
			Graph: degradedG, Algorithm: alg, Bytes: 64 << 20})
		if err != nil {
			return heteroRow{}, fmt.Errorf("hetero degraded %v: %w", alg, err)
		}
		return heteroRow{healthy, degraded}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.AddRow(algs[i].String(), report.Time(r.healthy.Total), report.Time(r.degraded.Total),
			report.Ratio(float64(r.degraded.Total)/float64(r.healthy.Total)))
	}
	t.AddNote("a degraded link slows every schedule routed over it; pipelined schedules stall at the slow stage")
	return []*report.Table{t}, nil
}

// degradedDGX1 builds the mesh-cube with the first GPU0-GPU1 channel pair
// at a quarter of NVLink bandwidth (e.g. a failing retimer), second parallel
// channel intact.
func degradedDGX1() *topology.Graph {
	g := topology.NewGraph()
	for i := 0; i < 8; i++ {
		g.AddNode(fmt.Sprintf("GPU%d", i), topology.GPU)
	}
	links := []struct {
		a, b   int
		double bool
	}{
		{0, 1, true}, {0, 2, false}, {0, 3, false},
		{1, 2, false}, {1, 3, false}, {2, 3, true},
		{4, 5, true}, {4, 6, false}, {4, 7, false},
		{5, 6, false}, {5, 7, false}, {6, 7, true},
		{0, 4, true}, {1, 5, true}, {2, 6, true}, {3, 7, true},
	}
	lat := des.Time(topology.NVLinkLatency)
	for _, l := range links {
		bw := topology.NVLinkBandwidth
		if l.a == 0 && l.b == 1 {
			bw /= 4 // the degraded pair's first channel
		}
		g.AddBidi(topology.NodeID(l.a), topology.NodeID(l.b), bw, lat, "nvlink")
		if l.double {
			g.AddBidi(topology.NodeID(l.a), topology.NodeID(l.b),
				topology.NVLinkBandwidth, lat, "nvlink2")
		}
	}
	return g
}
