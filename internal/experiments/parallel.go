package experiments

import "ccube/internal/sweep"

// Parallelism is the worker count the grid sweeps (fig13, fig14, ext-hetero,
// ext-faults) fan their cells across. It defaults to every available core;
// ccube-bench's -parallel flag overrides it, and 1 forces the reference
// serial path. Cells are independent and results are assembled in grid
// order, so the output is bit-identical at any setting — see
// internal/sweep.
var Parallelism = sweep.DefaultWorkers()
