package experiments

import (
	"fmt"

	"ccube/internal/report"
	"ccube/internal/scaleout"
)

// fig14Config returns the scale-out sweep. Tests and the default bench run
// cap at 256 nodes to keep a single run fast; `ccube-bench -fig 14 -max-nodes
// 1024` runs the paper's full range.
func fig14Config(maxNodes int) scaleout.Config {
	cfg := scaleout.DefaultConfig()
	var counts []int
	for _, p := range cfg.NodeCounts {
		if p <= maxNodes {
			counts = append(counts, p)
		}
	}
	cfg.NodeCounts = counts
	cfg.Workers = Parallelism
	return cfg
}

// Fig14MaxNodes bounds the default sweep size.
var Fig14MaxNodes = 256

// Fig14a reproduces the scale-out communication comparison: the performance
// ratio of the overlapped tree (C1) over the ring as nodes grow, for 16kB /
// 1MB / 64MB messages. Paper headline: up to ~20x for small messages where
// latency dominates; down to ~35% improvement at 64MB; C1 overtakes ring as
// node count grows.
func Fig14a() ([]*report.Table, error) {
	pts, err := scaleout.Run(fig14Config(Fig14MaxNodes))
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 14(a): C1 / ring communication performance ratio (switched fabric)",
		"nodes", "16kB", "1MB", "64MB")
	rows := map[int]map[int64]scaleout.Point{}
	var order []int
	for _, p := range pts {
		if rows[p.Nodes] == nil {
			rows[p.Nodes] = map[int64]scaleout.Point{}
			order = append(order, p.Nodes)
		}
		rows[p.Nodes][p.Bytes] = p
	}
	for _, n := range order {
		t.AddRow(fmt.Sprintf("%d", n),
			report.Ratio(rows[n][16<<10].OverlapVsRing()),
			report.Ratio(rows[n][1<<20].OverlapVsRing()),
			report.Ratio(rows[n][64<<20].OverlapVsRing()),
		)
	}
	t.AddNote("paper: up to ~20x at small sizes; benefit shrinks at 64MB; grows with node count")
	return []*report.Table{t}, nil
}

// Fig14b reproduces the gradient-turnaround study: the speedup of C1's
// turnaround over B's. Paper headline: ~29x average, up to 69x; no benefit
// for small messages with few chunks.
func Fig14b() ([]*report.Table, error) {
	pts, err := scaleout.Run(fig14Config(Fig14MaxNodes))
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 14(b): gradient turnaround speedup, C1 vs B",
		"nodes", "16kB", "1MB", "64MB")
	rows := map[int]map[int64]scaleout.Point{}
	var order []int
	for _, p := range pts {
		if rows[p.Nodes] == nil {
			rows[p.Nodes] = map[int64]scaleout.Point{}
			order = append(order, p.Nodes)
		}
		rows[p.Nodes][p.Bytes] = p
	}
	var sum float64
	var count int
	var max float64
	for _, n := range order {
		cells := []string{fmt.Sprintf("%d", n)}
		for _, sz := range []int64{16 << 10, 1 << 20, 64 << 20} {
			s := rows[n][sz].TurnaroundSpeedup()
			cells = append(cells, report.Ratio(s))
			sum += s
			count++
			if s > max {
				max = s
			}
		}
		t.AddRow(cells...)
	}
	t.AddNote("average %.1fx, max %.1fx (paper: 29x average, up to 69x)", sum/float64(count), max)
	return []*report.Table{t}, nil
}
