package experiments

import (
	"context"
	"fmt"
	"time"

	"ccube/internal/autotune"
	"ccube/internal/des"
	"ccube/internal/report"
	"ccube/internal/synth"
	"ccube/internal/topology"
)

// synthSizes are the message sizes of the synthesis study: a latency-bound
// gradient shard and a bandwidth-bound fused bucket.
var synthSizes = []int64{1 << 20, 16 << 20}

// SynthCell is one (topology, size) synthesis measurement: cold compile
// time, the winning plan's shape, and the simulated makespan next to the
// best built-in algorithm's (zero when no built-in can run at all).
type SynthCell struct {
	Topology     string  `json:"topology"`
	Bytes        int64   `json:"bytes"`
	BuildSeconds float64 `json:"build_seconds"`
	SynthNS      int64   `json:"synth_makespan_ns"`
	BuiltinAlg   string  `json:"best_builtin,omitempty"`
	BuiltinNS    int64   `json:"builtin_makespan_ns,omitempty"`
	// Ratio is synth/builtin simulated makespan; <1 means synthesis wins,
	// 0 means no built-in builds on the topology.
	Ratio    float64 `json:"synth_over_builtin,omitempty"`
	Trees    int     `json:"trees"`
	Chunks   int     `json:"chunks"`
	Detours  int     `json:"detours"`
	Variants int     `json:"variants"`
	Passes   int     `json:"passes"`
	// Fig13 marks the paper's evaluation platforms (dgx1 high/low): the
	// bench gate requires synthesis to hold the built-in contract there.
	Fig13 bool `json:"fig13_platform"`
}

// synthPlatform is one topology of the synthesis grid.
type synthPlatform struct {
	name      string
	graph     func() *topology.Graph
	fig13     bool
	irregular bool
}

// Irregular-fabric parameters, shared with ccube-sim and ccube-serve: a
// topology name must always denote the same graph, so the seed is fixed.
const (
	synthIrregularBW   = 25e9
	synthIrregularLat  = des.Microsecond
	synthIrregularSeed = 1
)

// synthDegradedDGX1 is a DGX-1 with every channel between GPU0 and GPU1 at
// a quarter of nominal bandwidth — the "one flaky NVLink" scenario.
func synthDegradedDGX1() *topology.Graph {
	g := dgx1()
	gpus := g.GPUs()
	for _, ch := range g.ChannelsBetween(gpus[0], gpus[1]) {
		g.DegradeChannel(ch, 4)
	}
	for _, ch := range g.ChannelsBetween(gpus[1], gpus[0]) {
		g.DegradeChannel(ch, 4)
	}
	return g
}

// synthPlatforms spans the fig13 evaluation platforms, the fig14 scale-out
// logical topologies, and three irregular fabrics no built-in targets.
func synthPlatforms() []synthPlatform {
	fc := func(n int) func() *topology.Graph {
		return func() *topology.Graph {
			return topology.FullyConnected(n, synthIrregularBW, synthIrregularLat)
		}
	}
	return []synthPlatform{
		{"dgx1", dgx1, true, false},
		{"dgx1-low", dgx1Low, true, false},
		{"fc4", fc(4), false, false},
		{"fc8", fc(8), false, false},
		{"fc16", fc(16), false, false},
		{"asym-fc8", func() *topology.Graph {
			return topology.AsymmetricFullyConnected(8, synthIrregularBW, synthIrregularLat, synthIrregularSeed)
		}, false, true},
		{"rr16", func() *topology.Graph {
			return topology.RandomRegular(16, 4, synthIrregularBW, synthIrregularLat, synthIrregularSeed)
		}, false, true},
		{"dgx1-degraded", synthDegradedDGX1, false, true},
	}
}

// SynthSweep compiles an AllReduce for every (platform, size) cell with the
// cache bypassed — so BuildSeconds is a real cold compile — and races the
// result against the best built-in algorithm on the same graph. ccube-bench
// replays this sweep for the BENCH_ccube.json synth block and its gates.
func SynthSweep() ([]SynthCell, error) {
	ctx := context.Background()
	var cells []SynthCell
	for _, p := range synthPlatforms() {
		g := p.graph()
		for _, n := range synthSizes {
			start := time.Now()
			res, err := synth.Synthesize(ctx, g, n, synth.Options{NoCache: true})
			if err != nil {
				return nil, fmt.Errorf("synth %s %d: %w", p.name, n, err)
			}
			build := time.Since(start).Seconds()
			sim, err := res.Schedule.ExecuteCtx(ctx)
			if err != nil {
				return nil, fmt.Errorf("synth %s %d execute: %w", p.name, n, err)
			}
			cell := SynthCell{
				Topology:     p.name,
				Bytes:        n,
				BuildSeconds: build,
				SynthNS:      int64(sim.Total),
				Trees:        res.Report.Trees,
				Chunks:       res.Report.Chunks,
				Detours:      res.Report.Detours,
				Variants:     res.Report.Variants,
				Passes:       len(res.Report.Passes),
				Fig13:        p.fig13,
			}
			// Built-ins run with shared channels allowed: the fc grids have
			// one channel per direction, and the strongest opponent is the
			// fairest.
			cands, err := autotune.CandidatesWith(ctx, g, n, autotune.Options{AllowShared: true})
			if err != nil {
				return nil, fmt.Errorf("builtins %s %d: %w", p.name, n, err)
			}
			for _, c := range cands {
				if c.Err != nil {
					continue
				}
				if cell.BuiltinAlg == "" || c.Total < des.Time(cell.BuiltinNS) {
					cell.BuiltinAlg, cell.BuiltinNS = c.Algorithm.String(), int64(c.Total)
				}
			}
			if cell.BuiltinNS > 0 {
				cell.Ratio = float64(cell.SynthNS) / float64(cell.BuiltinNS)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// ExtSynth reports the schedule-synthesis study: the compiler against the
// built-in menu on the paper's platforms and the fig14 scale-out grid, then
// on irregular fabrics where no built-in is optimal (or even runnable).
func ExtSynth() ([]*report.Table, error) {
	cells, err := SynthSweep()
	if err != nil {
		return nil, err
	}
	irregular := map[string]bool{}
	for _, p := range synthPlatforms() {
		irregular[p.name] = p.irregular
	}

	reg := report.New("Extension: synthesized vs best built-in AllReduce (regular platforms)",
		"topology", "size", "best builtin", "builtin", "synth", "synth/builtin", "plan")
	irr := report.New("Extension: schedule synthesis on irregular fabrics",
		"topology", "size", "best builtin", "builtin", "synth", "speedup", "plan")
	for _, c := range cells {
		plan := fmt.Sprintf("%dt x %dc", c.Trees, c.Chunks)
		if c.Detours > 0 {
			plan += fmt.Sprintf(" +%dd", c.Detours)
		}
		if !irregular[c.Topology] {
			reg.AddRow(c.Topology, report.Bytes(c.Bytes), c.BuiltinAlg,
				report.Time(des.Time(c.BuiltinNS)), report.Time(des.Time(c.SynthNS)),
				report.Ratio(c.Ratio), plan)
			continue
		}
		if c.BuiltinAlg == "" {
			irr.AddRow(c.Topology, report.Bytes(c.Bytes), "(none builds)", "-",
				report.Time(des.Time(c.SynthNS)), "-", plan)
			continue
		}
		irr.AddRow(c.Topology, report.Bytes(c.Bytes), c.BuiltinAlg,
			report.Time(des.Time(c.BuiltinNS)), report.Time(des.Time(c.SynthNS)),
			report.Ratio(float64(c.BuiltinNS)/float64(c.SynthNS)), plan)
	}
	reg.AddNote("synthesis packs bandwidth-weighted channel-disjoint trees; parity with the hand-written menu is the contract here")
	irr.AddNote("speedup = builtin/synth; the random 4-regular graph has no runnable built-in at all")
	return []*report.Table{reg, irr}, nil
}
