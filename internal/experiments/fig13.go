package experiments

import (
	"fmt"

	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/sweep"
	"ccube/internal/topology"
	"ccube/internal/train"
)

// fig13Batches are the per-GPU batch sizes of the training study.
var fig13Batches = []int{16, 32, 64}

// Fig13Cell is one (model, batch, bandwidth, mode) measurement.
type Fig13Cell struct {
	Model     string
	Batch     int
	Bandwidth string // "low" or "high"
	Mode      train.Mode
	Result    *train.Result
}

// fig13Point is one grid coordinate, enumerated up front so the sweep can
// fan cells across workers while preserving the serial bw → model → batch →
// mode order in the output.
type fig13Point struct {
	bw    string
	graph *topology.Graph
	model dnn.Model
	batch int
	mode  train.Mode
}

func fig13Grid() []fig13Point {
	graphs := map[string]*topology.Graph{"low": dgx1Low(), "high": dgx1()}
	var pts []fig13Point
	for _, bw := range []string{"low", "high"} {
		for _, model := range dnn.EvaluationModels() {
			for _, batch := range fig13Batches {
				for _, mode := range train.Modes() {
					pts = append(pts, fig13Point{bw, graphs[bw], model, batch, mode})
				}
			}
		}
	}
	return pts
}

// runFig13Grid evaluates the given points on up to workers goroutines. The
// two graphs are shared across cells but only read; schedules come from the
// mutex-guarded collective cache and execute on per-cell resources, so any
// worker count produces bit-identical cells (see TestFig13ParallelMatchesSerial).
func runFig13Grid(pts []fig13Point, workers int) ([]Fig13Cell, error) {
	return sweep.Grid(len(pts), workers, func(i int) (Fig13Cell, error) {
		p := pts[i]
		res, err := train.Run(train.Config{
			Model: p.model, Batch: p.batch, Graph: p.graph, Mode: p.mode,
		})
		if err != nil {
			return Fig13Cell{}, fmt.Errorf("fig13 %s b%d %s %s: %w", p.model.Name, p.batch, p.bw, p.mode, err)
		}
		return Fig13Cell{
			Model: p.model.Name, Batch: p.batch, Bandwidth: p.bw, Mode: p.mode, Result: res,
		}, nil
	})
}

// Fig13Sweep runs the full training grid and returns every cell.
func Fig13Sweep() ([]Fig13Cell, error) {
	return runFig13Grid(fig13Grid(), Parallelism)
}

// Fig13 reproduces the normalized-performance grid (Fig. 13) plus the
// paper's §V-B2 summary aggregates: C1 ~10% avg (up to 20%) over B, CC ~32%
// avg (up to 61%) over B, CC up to 31% over R, peak efficiency ~98%.
func Fig13() ([]*report.Table, error) {
	cells, err := Fig13Sweep()
	if err != nil {
		return nil, err
	}

	grid := report.New("Fig 13: normalized performance (1.0 = ideal linear speedup)",
		"bandwidth", "model", "batch", "B", "C1", "C2", "R", "CC")
	type key struct {
		bw, model string
		batch     int
	}
	rows := map[key]map[train.Mode]*train.Result{}
	var order []key
	for _, c := range cells {
		k := key{c.Bandwidth, c.Model, c.Batch}
		if rows[k] == nil {
			rows[k] = map[train.Mode]*train.Result{}
			order = append(order, k)
		}
		rows[k][c.Mode] = c.Result
	}
	for _, k := range order {
		r := rows[k]
		grid.AddRow(k.bw, k.model, fmt.Sprintf("%d", k.batch),
			report.F2(r[train.ModeB].Normalized),
			report.F2(r[train.ModeC1].Normalized),
			report.F2(r[train.ModeC2].Normalized),
			report.F2(r[train.ModeR].Normalized),
			report.F2(r[train.ModeCC].Normalized),
		)
	}

	summary := report.New("Fig 13 summary: speedups over baselines",
		"comparison", "average", "maximum", "paper")
	avgMax := func(num, den train.Mode) (avg, max float64) {
		var sum float64
		n := 0
		for _, k := range order {
			s := float64(rows[k][den].IterTime) / float64(rows[k][num].IterTime)
			sum += s
			if s > max {
				max = s
			}
			n++
		}
		return sum / float64(n), max
	}
	for _, cmp := range []struct {
		name     string
		num, den train.Mode
		paper    string
	}{
		{"C1 vs B", train.ModeC1, train.ModeB, "+10% avg, +20% max"},
		{"C2 vs B", train.ModeC2, train.ModeB, "slightly above C1"},
		{"CC vs B", train.ModeCC, train.ModeB, "+32% avg, +61% max"},
		{"CC vs R", train.ModeCC, train.ModeR, "up to +31%"},
	} {
		avg, max := avgMax(cmp.num, cmp.den)
		summary.AddRow(cmp.name,
			report.Percent(avg-1), report.Percent(max-1), cmp.paper)
	}
	var peak float64
	for _, k := range order {
		if e := rows[k][train.ModeCC].Normalized; e > peak {
			peak = e
		}
	}
	summary.AddNote("peak CC efficiency: %s (paper: up to 98%%)", report.Percent(peak))
	return []*report.Table{grid, summary}, nil
}
