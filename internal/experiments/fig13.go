package experiments

import (
	"fmt"

	"ccube/internal/dnn"
	"ccube/internal/report"
	"ccube/internal/topology"
	"ccube/internal/train"
)

// fig13Batches are the per-GPU batch sizes of the training study.
var fig13Batches = []int{16, 32, 64}

// Fig13Cell is one (model, batch, bandwidth, mode) measurement.
type Fig13Cell struct {
	Model     string
	Batch     int
	Bandwidth string // "low" or "high"
	Mode      train.Mode
	Result    *train.Result
}

// Fig13Sweep runs the full training grid and returns every cell.
func Fig13Sweep() ([]Fig13Cell, error) {
	var cells []Fig13Cell
	for _, bw := range []string{"low", "high"} {
		var g *topology.Graph
		if bw == "low" {
			g = dgx1Low()
		} else {
			g = dgx1()
		}
		for _, model := range dnn.EvaluationModels() {
			for _, batch := range fig13Batches {
				for _, mode := range train.Modes() {
					res, err := train.Run(train.Config{
						Model: model, Batch: batch, Graph: g, Mode: mode,
					})
					if err != nil {
						return nil, fmt.Errorf("fig13 %s b%d %s %s: %w", model.Name, batch, bw, mode, err)
					}
					cells = append(cells, Fig13Cell{
						Model: model.Name, Batch: batch, Bandwidth: bw, Mode: mode, Result: res,
					})
				}
			}
		}
	}
	return cells, nil
}

// Fig13 reproduces the normalized-performance grid (Fig. 13) plus the
// paper's §V-B2 summary aggregates: C1 ~10% avg (up to 20%) over B, CC ~32%
// avg (up to 61%) over B, CC up to 31% over R, peak efficiency ~98%.
func Fig13() ([]*report.Table, error) {
	cells, err := Fig13Sweep()
	if err != nil {
		return nil, err
	}

	grid := report.New("Fig 13: normalized performance (1.0 = ideal linear speedup)",
		"bandwidth", "model", "batch", "B", "C1", "C2", "R", "CC")
	type key struct {
		bw, model string
		batch     int
	}
	rows := map[key]map[train.Mode]*train.Result{}
	var order []key
	for _, c := range cells {
		k := key{c.Bandwidth, c.Model, c.Batch}
		if rows[k] == nil {
			rows[k] = map[train.Mode]*train.Result{}
			order = append(order, k)
		}
		rows[k][c.Mode] = c.Result
	}
	for _, k := range order {
		r := rows[k]
		grid.AddRow(k.bw, k.model, fmt.Sprintf("%d", k.batch),
			report.F2(r[train.ModeB].Normalized),
			report.F2(r[train.ModeC1].Normalized),
			report.F2(r[train.ModeC2].Normalized),
			report.F2(r[train.ModeR].Normalized),
			report.F2(r[train.ModeCC].Normalized),
		)
	}

	summary := report.New("Fig 13 summary: speedups over baselines",
		"comparison", "average", "maximum", "paper")
	avgMax := func(num, den train.Mode) (avg, max float64) {
		var sum float64
		n := 0
		for _, k := range order {
			s := float64(rows[k][den].IterTime) / float64(rows[k][num].IterTime)
			sum += s
			if s > max {
				max = s
			}
			n++
		}
		return sum / float64(n), max
	}
	for _, cmp := range []struct {
		name     string
		num, den train.Mode
		paper    string
	}{
		{"C1 vs B", train.ModeC1, train.ModeB, "+10% avg, +20% max"},
		{"C2 vs B", train.ModeC2, train.ModeB, "slightly above C1"},
		{"CC vs B", train.ModeCC, train.ModeB, "+32% avg, +61% max"},
		{"CC vs R", train.ModeCC, train.ModeR, "up to +31%"},
	} {
		avg, max := avgMax(cmp.num, cmp.den)
		summary.AddRow(cmp.name,
			report.Percent(avg-1), report.Percent(max-1), cmp.paper)
	}
	var peak float64
	for _, k := range order {
		if e := rows[k][train.ModeCC].Normalized; e > peak {
			peak = e
		}
	}
	summary.AddNote("peak CC efficiency: %s (paper: up to 98%%)", report.Percent(peak))
	return []*report.Table{grid, summary}, nil
}
