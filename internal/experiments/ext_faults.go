package experiments

import (
	"fmt"

	"ccube/internal/collective"
	"ccube/internal/fault"
	"ccube/internal/report"
	"ccube/internal/sweep"
)

// ExtFaults measures degradation under link failures (framed like the
// paper's Fig. 15 overhead study): n random NVLinks are killed, every
// schedule is statically repaired around them — parallel channel first, then
// a one-GPU detour, the paper's §IV-A forwarding mechanism — and the
// repaired collective's makespan is compared against the healthy fabric.
// Reroutes funnel traffic onto surviving links, so perf degrades smoothly
// with the failure count instead of falling off a cliff; the double tree is
// the most exposed because every killed tree edge adds a two-hop detour to a
// pipelined critical path.
// extFaultRow is one rendered table row, computed inside a sweep cell.
type extFaultRow struct {
	alg      string
	failed   int
	makespan string
	slowdown string
	rerouted int
}

func ExtFaults() ([]*report.Table, error) {
	const bytes = 64 << 20
	const seed = 1
	algs := []collective.Algorithm{
		collective.AlgRing,
		collective.AlgHalvingDoubling,
		collective.AlgDoubleTree,
		collective.AlgDoubleTreeOverlap,
	}
	t := report.New("Extension: perf loss vs number of failed links (random kills, repaired schedules, 64MB)",
		"algorithm", "failed links", "makespan", "slowdown", "rerouted transfers")
	// One sweep cell per algorithm: fault plans mutate the graph's health
	// state, so every cell builds a private dgx1() and runs its whole
	// healthy-plus-failures column on it. Rows land in algorithm order.
	rows, err := sweep.Grid(len(algs), Parallelism, func(i int) ([]extFaultRow, error) {
		alg := algs[i]
		g := dgx1()
		healthy, _, err := fault.RunCollective(collective.Config{
			Graph: g, Algorithm: alg, Bytes: bytes}, nil)
		if err != nil {
			return nil, fmt.Errorf("faults healthy %v: %w", alg, err)
		}
		var out []extFaultRow
		for failed := 0; failed <= 3; failed++ {
			plan := fault.RandomLinkFailures(g, seed, failed)
			res, rep, err := fault.RunCollective(collective.Config{
				Graph: g, Algorithm: alg, Bytes: bytes}, plan)
			if err != nil {
				return nil, fmt.Errorf("faults %v n=%d: %w", alg, failed, err)
			}
			out = append(out, extFaultRow{
				alg: alg.String(), failed: failed, makespan: report.Time(res.Total),
				slowdown: report.Ratio(float64(res.Total) / float64(healthy.Total)),
				rerouted: rep.Rerouted(),
			})
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, col := range rows {
		for _, r := range col {
			t.AddRow(r.alg, fmt.Sprintf("%d", r.failed), r.makespan, r.slowdown,
				fmt.Sprintf("%d", r.rerouted))
		}
	}
	t.AddNote("dead links repaired statically: parallel channel when one survives, else a one-GPU detour (§IV-A)")
	t.AddNote("slowdown is graceful because repaired flows share surviving links; contention is simulated, not assumed")
	return []*report.Table{t}, nil
}
