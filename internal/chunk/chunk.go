// Package chunk partitions an AllReduce message into the pipeline chunks the
// collective algorithms operate on, and maps neural-network layers onto those
// chunks (the paper's Layer-Chunk Table, Fig. 9).
//
// C-Cube deliberately introduces no extra partitioning: the chunks are the
// ones the collective already pipelines for bandwidth (paper §III-D), and the
// gradient queue reuses the gradient buffer at chunk granularity.
package chunk

import "fmt"

// Partition describes a message of TotalBytes split into contiguous chunks.
// Chunk i covers bytes [Offsets[i], Offsets[i]+Sizes[i]).
type Partition struct {
	TotalBytes int64
	Sizes      []int64
	Offsets    []int64
}

// Split partitions total bytes into exactly k near-equal chunks: the first
// total%k chunks get one extra byte so sizes differ by at most one. Split
// panics when k > total (zero-byte chunks are never produced); callers that
// iterate chunk indices 0..k-1 would silently desync from a clamped
// partition. Use SplitAtMost when a smaller chunk count is acceptable.
func Split(total int64, k int) Partition {
	if total <= 0 {
		panic(fmt.Sprintf("chunk: total bytes %d <= 0", total))
	}
	if k < 1 {
		panic(fmt.Sprintf("chunk: chunk count %d < 1", k))
	}
	if int64(k) > total {
		panic(fmt.Sprintf("chunk: %d chunks for %d bytes (zero-byte chunks); use SplitAtMost for an explicit clamp", k, total))
	}
	p := Partition{
		TotalBytes: total,
		Sizes:      make([]int64, k),
		Offsets:    make([]int64, k),
	}
	base := total / int64(k)
	extra := total % int64(k)
	var off int64
	for i := 0; i < k; i++ {
		size := base
		if int64(i) < extra {
			size++
		}
		p.Sizes[i] = size
		p.Offsets[i] = off
		off += size
	}
	return p
}

// SplitAtMost partitions total bytes into min(k, total) near-equal chunks.
// The clamp is explicit: the caller must take the actual chunk count from
// Partition.NumChunks rather than assuming k.
func SplitAtMost(total int64, k int) Partition {
	if int64(k) > total && total > 0 {
		k = int(total)
	}
	return Split(total, k)
}

// NumChunks returns the chunk count.
func (p Partition) NumChunks() int { return len(p.Sizes) }

// ChunkOf returns the index of the chunk containing byte offset `byte`.
func (p Partition) ChunkOf(byte int64) int {
	if byte < 0 || byte >= p.TotalBytes {
		panic(fmt.Sprintf("chunk: byte offset %d out of range [0,%d)", byte, p.TotalBytes))
	}
	// Binary search over offsets.
	lo, hi := 0, len(p.Offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.Offsets[mid] <= byte {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Validate checks internal consistency: contiguous coverage of TotalBytes.
func (p Partition) Validate() error {
	if len(p.Sizes) != len(p.Offsets) {
		return fmt.Errorf("chunk: %d sizes vs %d offsets", len(p.Sizes), len(p.Offsets))
	}
	var off int64
	for i := range p.Sizes {
		if p.Sizes[i] <= 0 {
			return fmt.Errorf("chunk: chunk %d has size %d", i, p.Sizes[i])
		}
		if p.Offsets[i] != off {
			return fmt.Errorf("chunk: chunk %d offset %d, want %d", i, p.Offsets[i], off)
		}
		off += p.Sizes[i]
	}
	if off != p.TotalBytes {
		return fmt.Errorf("chunk: chunks cover %d bytes, want %d", off, p.TotalBytes)
	}
	return nil
}

// LayerChunkTable maps each layer to the last chunk that carries any of its
// gradient bytes. A layer's gradients are complete — and its forward pass
// may be dequeued — once every chunk up to and including LastChunk[layer]
// has finished AllReduce (paper Fig. 9, "Layer-Chunk Table").
//
// Layers are laid out in forward order, layer 0 first, because the next
// iteration consumes gradients in that order (paper Fig. 8).
type LayerChunkTable struct {
	LastChunk []int
}

// BuildLayerChunkTable lays out layers contiguously in index order over the
// partition and records each layer's final chunk. Zero-byte layers inherit
// the preceding layer's last chunk (they are ready whenever it is).
func BuildLayerChunkTable(layerBytes []int64, p Partition) LayerChunkTable {
	var total int64
	for i, b := range layerBytes {
		if b < 0 {
			panic(fmt.Sprintf("chunk: layer %d has negative size %d", i, b))
		}
		total += b
	}
	if total != p.TotalBytes {
		panic(fmt.Sprintf("chunk: layers total %d bytes but partition covers %d", total, p.TotalBytes))
	}
	t := LayerChunkTable{LastChunk: make([]int, len(layerBytes))}
	var off int64
	for i, b := range layerBytes {
		if b == 0 {
			if off == 0 {
				t.LastChunk[i] = 0 // ready with the very first chunk
			} else {
				t.LastChunk[i] = p.ChunkOf(off - 1)
			}
			continue
		}
		t.LastChunk[i] = p.ChunkOf(off + b - 1)
		off += b
	}
	return t
}

// NumLayers returns the layer count.
func (t LayerChunkTable) NumLayers() int { return len(t.LastChunk) }

// Validate checks that last-chunk indices are non-decreasing (layers are
// contiguous, so a later layer can never complete on an earlier chunk).
func (t LayerChunkTable) Validate() error {
	for i := 1; i < len(t.LastChunk); i++ {
		if t.LastChunk[i] < t.LastChunk[i-1] {
			return fmt.Errorf("chunk: layer %d last chunk %d < layer %d last chunk %d",
				i, t.LastChunk[i], i-1, t.LastChunk[i-1])
		}
	}
	return nil
}
