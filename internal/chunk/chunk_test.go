package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitEven(t *testing.T) {
	p := Split(100, 4)
	if p.NumChunks() != 4 {
		t.Fatalf("chunks = %d, want 4", p.NumChunks())
	}
	for i, s := range p.Sizes {
		if s != 25 {
			t.Fatalf("chunk %d size = %d, want 25", i, s)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRemainder(t *testing.T) {
	p := Split(10, 3)
	want := []int64{4, 3, 3}
	for i := range want {
		if p.Sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", p.Sizes, want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Regression: Split used to silently clamp k to total, desyncing callers
// that iterate chunk indices 0..k-1 from the partition. It now panics; the
// explicit clamp lives in SplitAtMost.
func TestSplitMoreChunksThanBytesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split(3, 10) did not panic")
		}
	}()
	Split(3, 10)
}

func TestSplitAtMostClampsExplicitly(t *testing.T) {
	p := SplitAtMost(3, 10)
	if p.NumChunks() != 3 {
		t.Fatalf("chunks = %d, want clamp to 3", p.NumChunks())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// No clamp needed: identical to Split.
	p = SplitAtMost(10, 3)
	q := Split(10, 3)
	if p.NumChunks() != q.NumChunks() || p.Sizes[0] != q.Sizes[0] {
		t.Fatalf("SplitAtMost(10,3) = %+v, want %+v", p, q)
	}
}

func TestSplitPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Split(0, 4) },
		func() { Split(-5, 4) },
		func() { Split(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Split did not panic")
				}
			}()
			f()
		}()
	}
}

func TestChunkOf(t *testing.T) {
	p := Split(10, 3) // sizes 4,3,3 offsets 0,4,7
	cases := []struct {
		byte int64
		want int
	}{
		{0, 0}, {3, 0}, {4, 1}, {6, 1}, {7, 2}, {9, 2},
	}
	for _, c := range cases {
		if got := p.ChunkOf(c.byte); got != c.want {
			t.Errorf("ChunkOf(%d) = %d, want %d", c.byte, got, c.want)
		}
	}
}

func TestChunkOfOutOfRangePanics(t *testing.T) {
	p := Split(10, 2)
	for _, b := range []int64{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChunkOf(%d) did not panic", b)
				}
			}()
			p.ChunkOf(b)
		}()
	}
}

func TestSplitPropertyCoversExactly(t *testing.T) {
	f := func(total uint32, k uint8) bool {
		tot := int64(total%1_000_000) + 1
		kk := int(k%64) + 1
		p := Split(tot, kk)
		if p.Validate() != nil {
			return false
		}
		// Sizes differ by at most 1.
		min, max := p.Sizes[0], p.Sizes[0]
		for _, s := range p.Sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkOfPropertyConsistentWithOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		tot := rng.Int63n(100_000) + 1
		k := rng.Intn(50) + 1
		p := Split(tot, k)
		for j := 0; j < 50; j++ {
			b := rng.Int63n(tot)
			c := p.ChunkOf(b)
			if b < p.Offsets[c] || b >= p.Offsets[c]+p.Sizes[c] {
				t.Fatalf("ChunkOf(%d)=%d but chunk covers [%d,%d)", b, c, p.Offsets[c], p.Offsets[c]+p.Sizes[c])
			}
		}
	}
}

func TestLayerChunkTable(t *testing.T) {
	// 3 layers of 4, 3, 3 bytes over chunks of size 5, 5.
	p := Split(10, 2)
	tab := BuildLayerChunkTable([]int64{4, 3, 3}, p)
	// Layer 0 ends at byte 3 -> chunk 0; layer 1 ends at byte 6 -> chunk 1;
	// layer 2 ends at byte 9 -> chunk 1.
	want := []int{0, 1, 1}
	for i := range want {
		if tab.LastChunk[i] != want[i] {
			t.Fatalf("LastChunk = %v, want %v", tab.LastChunk, want)
		}
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayerChunkTableZeroByteLayer(t *testing.T) {
	p := Split(10, 5)
	tab := BuildLayerChunkTable([]int64{0, 4, 0, 6}, p)
	if tab.LastChunk[0] != 0 {
		t.Fatalf("leading zero-byte layer last chunk = %d, want 0", tab.LastChunk[0])
	}
	if tab.LastChunk[2] != tab.LastChunk[1] {
		t.Fatalf("zero-byte layer %d != preceding %d", tab.LastChunk[2], tab.LastChunk[1])
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Pin the documented "inherit preceding layer's chunk" semantics for every
// zero-byte-layer position: leading, trailing, and consecutive runs.
func TestLayerChunkTableZeroByteLayerEdgeCases(t *testing.T) {
	p := Split(10, 5) // sizes 2,2,2,2,2 -> layer byte b lives in chunk b/2
	cases := []struct {
		name   string
		layers []int64
		want   []int
	}{
		{"leading", []int64{0, 10}, []int{0, 4}},
		{"leading-consecutive", []int64{0, 0, 0, 10}, []int{0, 0, 0, 4}},
		{"trailing", []int64{10, 0}, []int{4, 4}},
		{"trailing-consecutive", []int64{10, 0, 0}, []int{4, 4, 4}},
		{"interior-consecutive", []int64{4, 0, 0, 6}, []int{1, 1, 1, 4}},
		{"mixed", []int64{0, 3, 0, 0, 7, 0}, []int{0, 1, 1, 1, 4, 4}},
	}
	for _, c := range cases {
		tab := BuildLayerChunkTable(c.layers, p)
		for i := range c.want {
			if tab.LastChunk[i] != c.want[i] {
				t.Errorf("%s: LastChunk = %v, want %v", c.name, tab.LastChunk, c.want)
				break
			}
		}
		if err := tab.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

// An all-zero-byte prefix with a partition built from the remaining bytes:
// every leading zero layer is ready with chunk 0.
func TestLayerChunkTableAllZeroPrefixSuffix(t *testing.T) {
	p := Split(4, 4)
	tab := BuildLayerChunkTable([]int64{0, 0, 4, 0, 0}, p)
	want := []int{0, 0, 3, 3, 3}
	for i := range want {
		if tab.LastChunk[i] != want[i] {
			t.Fatalf("LastChunk = %v, want %v", tab.LastChunk, want)
		}
	}
}

func TestLayerChunkTableSizeMismatchPanics(t *testing.T) {
	p := Split(10, 2)
	defer func() {
		if recover() == nil {
			t.Error("mismatched layer total did not panic")
		}
	}()
	BuildLayerChunkTable([]int64{4, 3}, p)
}

func TestLayerChunkTableMonotonicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		nLayers := rng.Intn(30) + 1
		layers := make([]int64, nLayers)
		var total int64
		for j := range layers {
			layers[j] = rng.Int63n(1000)
			total += layers[j]
		}
		if total == 0 {
			continue
		}
		p := SplitAtMost(total, rng.Intn(40)+1)
		tab := BuildLayerChunkTable(layers, p)
		if err := tab.Validate(); err != nil {
			t.Fatal(err)
		}
		if tab.NumLayers() != nLayers {
			t.Fatalf("layers = %d, want %d", tab.NumLayers(), nLayers)
		}
	}
}
