package chunk

import "testing"

// FuzzSplit exercises SplitAtMost across arbitrary sizes: the partition must
// always cover exactly the total, in order, with near-equal chunks, and the
// k > total clamp must match Split's strict contract (which panics there).
// Run `go test -fuzz=FuzzSplit ./internal/chunk` to explore beyond the
// seeds; `go test` replays the seed corpus as regression tests.
func FuzzSplit(f *testing.F) {
	f.Add(int64(1), 1)
	f.Add(int64(100), 7)
	f.Add(int64(1<<31), 512)
	f.Add(int64(3), 100)
	f.Fuzz(func(t *testing.T, total int64, k int) {
		if total <= 0 || k < 1 || total > 1<<40 || k > 1<<16 {
			t.Skip()
		}
		p := SplitAtMost(total, k)
		if int64(k) <= total && p.NumChunks() != k {
			t.Fatalf("SplitAtMost(%d,%d) clamped to %d chunks without need", total, k, p.NumChunks())
		}
		if int64(k) > total && p.NumChunks() != int(total) {
			t.Fatalf("SplitAtMost(%d,%d) = %d chunks, want clamp to %d", total, k, p.NumChunks(), total)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Split(%d,%d): %v", total, k, err)
		}
		min, max := p.Sizes[0], p.Sizes[0]
		for _, s := range p.Sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("Split(%d,%d): uneven chunks (min %d, max %d)", total, k, min, max)
		}
		// ChunkOf agrees with offsets at block boundaries.
		for i := range p.Offsets {
			if got := p.ChunkOf(p.Offsets[i]); got != i {
				t.Fatalf("ChunkOf(offset[%d]) = %d", i, got)
			}
		}
	})
}

// FuzzLayerChunkTable checks the layer-chunk invariants for arbitrary layer
// size vectors.
func FuzzLayerChunkTable(f *testing.F) {
	f.Add([]byte{10, 20, 30}, 4)
	f.Add([]byte{0, 5, 0, 0, 9}, 2)
	f.Add([]byte{255}, 300)
	f.Fuzz(func(t *testing.T, sizes []byte, k int) {
		if len(sizes) == 0 || len(sizes) > 1000 || k < 1 || k > 4096 {
			t.Skip()
		}
		layers := make([]int64, len(sizes))
		var total int64
		for i, b := range sizes {
			layers[i] = int64(b)
			total += int64(b)
		}
		if total == 0 {
			t.Skip()
		}
		p := SplitAtMost(total, k)
		tab := BuildLayerChunkTable(layers, p)
		if err := tab.Validate(); err != nil {
			t.Fatal(err)
		}
		if tab.NumLayers() != len(layers) {
			t.Fatalf("layers %d != %d", tab.NumLayers(), len(layers))
		}
		// The final layer's last chunk must be the final chunk.
		last := len(layers) - 1
		for layers[last] == 0 && last > 0 {
			last--
		}
		if layers[last] > 0 && tab.LastChunk[last] != p.NumChunks()-1 {
			t.Fatalf("final non-empty layer maps to chunk %d of %d",
				tab.LastChunk[last], p.NumChunks())
		}
	})
}
