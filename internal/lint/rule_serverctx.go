package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "server-ctx",
		Doc: "internal/server must launch simulations through the context-aware " +
			"engine entry points (RunCtx, ExecuteCtx, SelectCtx, ...); a plain " +
			"Run/Execute call detaches the simulation from the request deadline, " +
			"so a client timeout could no longer cancel it",
		Match: func(rel string) bool { return rel == "internal/server" || strings.HasPrefix(rel, "internal/server/") },
		Run:   runServerCtx,
	})
}

// engineEntryPoints are the context-free engine entry points that
// internal/server handler code must never call: each has a *Ctx variant, and
// calling the plain form would detach the simulation from the request's
// deadline. This name table is the fast syntactic layer; the repo-wide
// ctx-propagation rule additionally discovers Ctx variants through the type
// checker.
var engineEntryPoints = map[string]string{
	"Run":                "RunCtx",
	"RunErr":             "RunCtxErr",
	"RunTraced":          "RunTracedCtx",
	"Execute":            "ExecuteCtx",
	"ExecuteOn":          "ExecuteOnCtx",
	"ExecuteTraced":      "ExecuteTracedCtx",
	"RunCollective":      "RunCollectiveCtx",
	"RunBackwardOverlap": "RunBackwardOverlapCtx",
	"Select":             "SelectCtx",
	"Best":               "BestCtx",
	"Candidates":         "CandidatesCtx",
}

func runServerCtx(p *Pass) {
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			want, bad := engineEntryPoints[sel.Sel.Name]
			if !bad {
				return true
			}
			recv := types.ExprString(sel.X)
			p.ReportWithFix(call.Pos(),
				recv+"."+sel.Sel.Name+" ignores the request context; use "+want+" so r.Context() cancels the simulation",
				&SuggestedFix{
					Message: "propagate the request context",
					NewText: recv + "." + want + "(r.Context(), ...)",
				})
			return true
		})
	}
}
