package sim

// RepairScheduleIncremental mimics the engine's live-schedule patcher: its
// result must pass a verifier before it may execute.
func RepairScheduleIncremental() error { return nil }

// VerifyPatch is the delta verifier for patched schedules.
func VerifyPatch() error { return nil }

// PatchUnchecked repairs and never re-verifies.
func PatchUnchecked() error {
	return RepairScheduleIncremental() // want "repair-verify"
}

// PatchChecked discharges the obligation in the same scope.
func PatchChecked() error {
	if err := RepairScheduleIncremental(); err != nil {
		return err
	}
	return VerifyPatch()
}

// PatchQuiet is the suppressed twin.
func PatchQuiet() error {
	return RepairScheduleIncremental() //lint:ignore repair-verify fixture: suppressed unverified patch
}
