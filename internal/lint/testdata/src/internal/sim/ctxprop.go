// Package sim is a lint fixture for the repo-wide typed rules:
// ctx-propagation, goroutine-leak, lock-pairing, metrics-cardinality, and
// unchecked-engine-err.
package sim

import "context"

// Solve runs one repair pass.
func Solve() error { return nil }

// SolveCtx is Solve under a cancellation context.
func SolveCtx(ctx context.Context) error { return ctx.Err() }

// Drive has the context in scope and drops it.
func Drive(ctx context.Context) error {
	return Solve() // want "ctx-propagation"
}

// DriveLit shows function literals inheriting the enclosing context name.
func DriveLit(ctx context.Context) error {
	f := func() error {
		return Solve() // want "ctx-propagation"
	}
	return f()
}

// DriveRight propagates the context.
func DriveRight(ctx context.Context) error {
	return SolveCtx(ctx)
}

// DriveQuiet is the suppressed twin.
func DriveQuiet(ctx context.Context) error {
	return Solve() //lint:ignore ctx-propagation fixture: suppressed context drop
}

// NoCtx has no context in scope, so the plain call is fine.
func NoCtx() error { return Solve() }
