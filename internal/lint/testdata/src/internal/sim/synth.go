package sim

// Assemble mimics the collective constructor for synthesized schedules: it
// performs no verification itself, so the result must be checked before it
// may execute.
func Assemble() error { return nil }

// AssembleUnchecked builds a schedule and never verifies it.
func AssembleUnchecked() error {
	return Assemble() // want "synth-verify"
}

// AssembleChecked discharges the obligation in the same scope.
func AssembleChecked() error {
	if err := Assemble(); err != nil {
		return err
	}
	return Verify(true)
}

// AssembleDeferred verifies in a function literal: a separate scope, so the
// obligation is NOT discharged — the literal may never run.
func AssembleDeferred() error {
	defer func() {
		if err := Verify(true); err != nil {
			panic(err)
		}
	}()
	return Assemble() // want "synth-verify"
}

// AssembleQuiet is the suppressed twin.
func AssembleQuiet() error {
	return Assemble() //lint:ignore synth-verify fixture: suppressed unverified assembly
}
