package sim

import "sync"

func work() {}

// Spawn fires and forgets.
func Spawn() {
	go work() // want "goroutine-leak"
}

// SpawnJoined has a WaitGroup join path.
func SpawnJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// SpawnChannel joins through a channel receive.
func SpawnChannel() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// SpawnQuiet is the suppressed twin.
func SpawnQuiet() {
	go work() //lint:ignore goroutine-leak fixture: suppressed fire-and-forget
}
