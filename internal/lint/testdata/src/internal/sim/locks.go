package sim

import "sync"

var mu sync.Mutex
var state int

// Bump leaks the lock.
func Bump() {
	mu.Lock() // want "lock-pairing"
	state++
}

// BumpPaired is the classic correct shape.
func BumpPaired() {
	mu.Lock()
	defer mu.Unlock()
	state++
}

// Registrar mimics testing.T's Cleanup registration surface.
type Registrar struct{ funcs []func() }

// Cleanup registers f to run when the scope ends.
func (r *Registrar) Cleanup(f func()) { r.funcs = append(r.funcs, f) }

// HoldUntilCleanup locks now and registers the unlock as a cleanup: the
// literal pairs with this function (the t.Cleanup false-positive regression).
func HoldUntilCleanup(r *Registrar) {
	mu.Lock()
	r.Cleanup(func() {
		mu.Unlock()
	})
}

// OnceRelease pairs through sync.OnceFunc the same way.
func OnceRelease() func() {
	mu.Lock()
	return sync.OnceFunc(func() {
		mu.Unlock()
	})
}

// StrayUnlock returns a literal that was never registered as a cleanup: it
// is its own scope, so its unpaired Unlock still fires.
func StrayUnlock() func() {
	return func() {
		mu.Unlock() // want "lock-pairing"
	}
}

// BumpQuiet is the suppressed twin.
func BumpQuiet() {
	mu.Lock() //lint:ignore lock-pairing fixture: suppressed leaked lock
	state++
}
