package sim

import "errors"

var errBad = errors.New("schedule does not verify")

// Verify checks one schedule; its error is the verification outcome.
func Verify(ok bool) error {
	if !ok {
		return errBad
	}
	return nil
}

// Check drops the verification outcome on the floor.
func Check() {
	Verify(true) // want "unchecked-engine-err"
}

// CheckBlank discards it through the blank identifier.
func CheckBlank() {
	_ = Verify(true) // want "unchecked-engine-err"
}

// CheckRight routes the error to its caller.
func CheckRight() error {
	return Verify(true)
}

// CheckQuiet is the suppressed twin.
func CheckQuiet() {
	Verify(true) //lint:ignore unchecked-engine-err fixture: suppressed dropped verification
}
