package sim

import "ccube/internal/metrics"

// runMode is a bounded label domain: a defined module type.
type runMode string

var mRuns = &metrics.CounterVec{}

// Record tags the run counter with values of bounded provenance.
func Record(m runMode) {
	mRuns.With("const-label").Inc()
	mRuns.With(string(m)).Inc()
}

// RecordUser passes a request-derived string straight into the label.
func RecordUser(user string) {
	mRuns.With(user).Inc() // want "metrics-cardinality"
}

// RecordUserQuiet is the suppressed twin.
func RecordUserQuiet(user string) {
	mRuns.With(user).Inc() //lint:ignore metrics-cardinality fixture: suppressed unbounded label
}
