// Package metrics is a lint fixture stub mirroring the real registry's
// labeled-family surface, so the metrics-cardinality rule has CounterVec and
// GaugeVec receivers to resolve against.
package metrics

// Counter is one labeled counter series.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Gauge is one labeled gauge series.
type Gauge struct{ v float64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.v = v }

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ series map[string]*Counter }

// With returns the series for the label value.
func (v *CounterVec) With(label string) *Counter {
	if v.series == nil {
		v.series = map[string]*Counter{}
	}
	c := v.series[label]
	if c == nil {
		c = &Counter{}
		v.series[label] = c
	}
	return c
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct{ series map[string]*Gauge }

// With returns the series for the label value.
func (v *GaugeVec) With(label string) *Gauge {
	if v.series == nil {
		v.series = map[string]*Gauge{}
	}
	g := v.series[label]
	if g == nil {
		g = &Gauge{}
		v.series[label] = g
	}
	return g
}
