// Package gpusim is a lint fixture for the kernel-goroutine rule: every
// goroutine here must carry a same-line comment naming the kernel it models.
package gpusim

import "sync"

// Launch spawns one annotated kernel runner and one stray goroutine.
func Launch() {
	var wg sync.WaitGroup
	wg.Add(2)
	go runStage(&wg) // all-reduce kernel runner
	go func() { // want "goroutine in internal/gpusim"
		wg.Done()
	}()
	wg.Wait()
}

func runStage(wg *sync.WaitGroup) {
	wg.Done()
}

// LaunchQuiet exercises the suppression path. The directive sits on the line
// above the go statement, because its own text names the rule and would
// otherwise satisfy the same-line annotation check.
func LaunchQuiet() {
	var wg sync.WaitGroup
	wg.Add(1)
	//lint:ignore kernel-goroutine fixture: suppressed stray goroutine
	go func() {
		wg.Done()
	}()
	wg.Wait()
}
