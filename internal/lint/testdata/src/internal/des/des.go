// Package des is a lint fixture modeling the DES engine's rule surface:
// hot-path allocation discipline (des-hot-alloc), the wall-clock ban
// (no-sleep, virtual-time), and the context-aware run entry point the sibling
// server fixture calls through.
package des

import (
	"context"
	"time"
)

// Engine is a miniature stand-in for the real event engine.
type Engine struct {
	buf []int
	now int64
}

// Run drains the engine (hot path: no allocations allowed).
func (e *Engine) Run() int {
	e.now++
	return len(e.buf)
}

// RunCtx is Run under a cancellation context.
func (e *Engine) RunCtx(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	e.now++
	return len(e.buf), nil
}

// push is on the per-event hot path; this growth is undocumented.
func (e *Engine) push(v int) {
	e.buf = append(e.buf, v) // want "des-hot-alloc"
}

// pop is hot too; its growth is documented, so it passes.
func (e *Engine) pop() int {
	if len(e.buf) == 0 {
		e.buf = append(e.buf, 0) // amortized: grow-once backfill
	}
	v := e.buf[len(e.buf)-1]
	e.buf = e.buf[:len(e.buf)-1]
	return v
}

// recycle is hot; its growth is waved through to exercise suppression.
func (e *Engine) recycle() {
	e.buf = append(e.buf, 0) //lint:ignore des-hot-alloc fixture: suppressed hot-path growth
}

// popRun models the batched drain: documented scratch reuse passes.
func (e *Engine) popRun(n int) {
	e.buf = e.buf[:0]
	for i := 0; i < n; i++ {
		e.buf = append(e.buf, i) // amortized: batch scratch reused across runs
	}
}

// fireBatch is on the batched hot path; this growth is undocumented.
func (e *Engine) fireBatch() {
	e.buf = append(e.buf, 0) // want "des-hot-alloc"
}

// Drain exists so the unexported hot-path helpers above are referenced.
func (e *Engine) Drain(v int) int {
	e.push(v)
	e.recycle()
	e.popRun(2)
	e.fireBatch()
	return e.pop()
}

// Wait blocks on the host clock: forbidden in a simulator package.
func Wait() {
	time.Sleep(time.Millisecond) // want "no-sleep"
}

// WaitQuiet is the suppressed twin.
func WaitQuiet() {
	time.Sleep(time.Millisecond) //lint:ignore no-sleep fixture: suppressed sleep
}

// Stamp reads the wall clock: forbidden in a simulator package.
func Stamp() int64 {
	return time.Now().UnixNano() // want "virtual-time"
}

// StampQuiet is the suppressed twin.
func StampQuiet() int64 {
	//lint:ignore virtual-time fixture: suppressed wall-clock read
	return time.Now().UnixNano()
}
