// Package server is a lint fixture for the server-ctx rule: handler code
// must launch simulations through the engine's context-aware entry points.
package server

import (
	"context"

	"ccube/internal/des"
)

// Handle launches a simulation detached from the request context.
func Handle(eng *des.Engine) int {
	return eng.Run() // want "server-ctx"
}

// HandleCtx is the corrected shape.
func HandleCtx(ctx context.Context, eng *des.Engine) (int, error) {
	return eng.RunCtx(ctx)
}

// HandleQuiet is the suppressed twin.
func HandleQuiet(eng *des.Engine) int {
	return eng.Run() //lint:ignore server-ctx fixture: suppressed detached run
}

// getBuf models the JSON fast path's pool feeder: an undocumented make in a
// server hot function is flagged by des-hot-alloc too.
func getBuf() []byte {
	return make([]byte, 0, 64) // want "des-hot-alloc"
}

// encodeBody appends into a pooled buffer; documented growth passes.
func encodeBody(b []byte) []byte {
	return append(b, '{', '}') // amortized: pooled response buffer reused across requests
}

// Encode references the helpers so they are live.
func Encode() []byte {
	return encodeBody(getBuf())
}
