module ccube

go 1.24
