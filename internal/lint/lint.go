// Package lint is a go/analysis-style static analysis framework built only
// on the standard library (go/ast, go/types, go/importer). It exists so
// repo-specific invariants — "simulated time never comes from the wall
// clock", "every goroutine has a join path", "metrics labels stay bounded" —
// are enforced by the build, the same way internal/schedcheck enforces
// schedule-level invariants before anything executes.
//
// Each rule is a self-registering *Analyzer. Analyzers share one
// type-checked load of every package (each file is parsed once and each
// package type-checked once, with the *types.Info shared), report
// *Diagnostic values that may carry a rendered suggested fix, and honor
// inline suppressions of the form
//
//	//lint:ignore <rule> <reason>
//
// placed on the offending line or on the line immediately above it. The
// reason is mandatory: a suppression without one is itself a diagnostic.
//
// Reporters render a Result as plain text, JSON, or SARIF 2.1.0 (see
// report.go). The ccube-lint command is a thin driver over Load + Run.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule. Analyzers are stateless; all per-run state
// lives in the Pass.
type Analyzer struct {
	// Name is the rule identifier used in reports and //lint:ignore
	// directives (kebab-case, e.g. "virtual-time").
	Name string

	// Doc is a one-paragraph description of what the rule enforces and why.
	Doc string

	// Match filters which packages the analyzer runs on, by slash-separated
	// package directory relative to the module root (e.g. "internal/des").
	// nil matches every package.
	Match func(relDir string) bool

	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass)
}

// registry holds every analyzer registered at init time.
var registry = map[string]*Analyzer{}

// Register adds an analyzer to the global registry; it panics on duplicate
// names so two rules can never silently shadow each other.
func Register(a *Analyzer) {
	if a.Name == "" || a.Run == nil {
		panic("lint: Register of unnamed analyzer or nil Run")
	}
	if _, dup := registry[a.Name]; dup {
		panic("lint: duplicate analyzer " + a.Name)
	}
	registry[a.Name] = a
}

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer { return registry[name] }

// SuggestedFix is a rendered replacement the reporter shows next to a
// diagnostic. Fixes are advisory (rendered, not applied).
type SuggestedFix struct {
	Message string // e.g. `use RunCtx so the context propagates`
	NewText string // the replacement snippet, e.g. `eng.RunCtx(ctx)`
}

// Diagnostic is one finding.
type Diagnostic struct {
	Rule     string
	Pos      token.Position
	Message  string
	Fix      *SuggestedFix
	Category string // optional sub-category for SARIF rule metadata
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	if d.Fix != nil {
		s += fmt.Sprintf("\n\tsuggested fix: %s: `%s`", d.Fix.Message, d.Fix.NewText)
	}
	return s
}

// Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the shared file set.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files (tests excluded).
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the shared type-check results for the package. It is
// never nil, but may be sparsely populated if the package had type errors.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// TypesPkg returns the type-checked package object (may be nil on hard
// type-check failure).
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...), nil)
}

// ReportWithFix records a diagnostic carrying a rendered suggested fix.
func (p *Pass) ReportWithFix(pos token.Pos, msg string, fix *SuggestedFix) {
	p.report(pos, msg, fix)
}

func (p *Pass) report(pos token.Pos, msg string, fix *SuggestedFix) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: msg,
		Fix:     fix,
	})
}

// Result is the outcome of one lint run.
type Result struct {
	Diagnostics []Diagnostic // surviving (unsuppressed), sorted by position
	Suppressed  int          // count silenced by //lint:ignore directives
	NumPackages int
	NumFiles    int
}

// Run executes the given analyzers over the loaded packages, applies
// suppressions, and returns position-sorted diagnostics. A nil analyzers
// slice runs every registered analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) *Result {
	if analyzers == nil {
		analyzers = All()
	}
	res := &Result{NumPackages: len(pkgs)}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		res.NumFiles += len(pkg.Files)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.RelDir) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
		// Malformed directives are diagnostics in their own right: a
		// suppression without a reason silences nothing.
		raw = append(raw, pkg.directiveErrors...)
	}
	for _, d := range raw {
		if suppressed(pkgs, d) {
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return res
}

// suppressed reports whether an //lint:ignore directive covers d.
func suppressed(pkgs []*Package, d Diagnostic) bool {
	for _, pkg := range pkgs {
		if sup, ok := pkg.suppressions[d.Pos.Filename]; ok {
			if rules, ok := sup[d.Pos.Line]; ok && (rules[d.Rule] || rules["*"]) {
				return true
			}
		}
	}
	return false
}

// --- suppression directives -------------------------------------------------

// directivePrefix is the inline suppression marker.
const directivePrefix = "//lint:ignore"

// collectSuppressions scans a file's comments for //lint:ignore directives.
// A directive suppresses the named rules (comma-separated; "*" wildcards) on
// its own line and on the immediately following line, covering both the
// trailing form (`stmt //lint:ignore rule why`) and the standalone form
// (directive on its own line above the statement). It returns
// line -> rule set, plus diagnostics for malformed directives.
func collectSuppressions(fset *token.FileSet, file *ast.File) (map[int]map[string]bool, []Diagnostic) {
	out := map[int]map[string]bool{}
	var errs []Diagnostic
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
			pos := fset.Position(c.Slash)
			if len(fields) < 2 {
				errs = append(errs, Diagnostic{
					Rule: "lint-directive", Pos: pos,
					Message: "malformed //lint:ignore directive: want `//lint:ignore <rule> <reason>` (the reason is mandatory)",
				})
				continue
			}
			rules := map[string]bool{}
			for _, r := range strings.Split(fields[0], ",") {
				rules[r] = true
			}
			apply := func(line int) {
				if out[line] == nil {
					out[line] = map[string]bool{}
				}
				for r := range rules {
					out[line][r] = true
				}
			}
			apply(pos.Line)
			apply(pos.Line + 1)
		}
	}
	return out, errs
}
