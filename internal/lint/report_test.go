package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleResult() *Result {
	return &Result{
		Diagnostics: []Diagnostic{
			{
				Rule:    "no-sleep",
				Pos:     token.Position{Filename: "internal/des/des.go", Line: 12, Column: 2},
				Message: "time.Sleep in a simulator package; advance time through the DES engine",
			},
			{
				Rule:    "server-ctx",
				Pos:     token.Position{Filename: "internal/server/api.go", Line: 40, Column: 9},
				Message: "eng.Run ignores the request context",
				Fix:     &SuggestedFix{Message: "propagate the request context", NewText: "eng.RunCtx(r.Context(), ...)"},
			},
		},
		Suppressed:  3,
		NumPackages: 2,
		NumFiles:    4,
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleResult(), FormatText); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	for _, wantSub := range []string{
		"internal/des/des.go:12:2: [no-sleep]",
		"suggested fix: propagate the request context",
		"ccube-lint: 2 issues (3 suppressed)",
	} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("text output missing %q:\n%s", wantSub, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleResult(), FormatJSON); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Diagnostics) != 2 || rep.Suppressed != 3 || rep.Packages != 2 || rep.Files != 4 {
		t.Fatalf("round-tripped report = %+v", rep)
	}
	if rep.Diagnostics[1].Fix == "" {
		t.Error("suggested fix lost in JSON encoding")
	}
}

func TestWriteUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleResult(), Format("xml")); err == nil {
		t.Fatal("Write accepted an unknown format")
	}
}

// TestSARIFShape validates the output against the SARIF 2.1.0 required-key
// shape that CI consumers (GitHub code scanning) check: $schema, version,
// runs[].tool.driver with rule metadata, and results with ruleId/ruleIndex
// and physical locations.
func TestSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleResult(), FormatSARIF); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc["$schema"] != sarifSchemaURI {
		t.Errorf("$schema = %v, want %q", doc["$schema"], sarifSchemaURI)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", doc["version"])
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one run", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "ccube-lint" {
		t.Errorf("tool.driver.name = %v, want ccube-lint", driver["name"])
	}
	rules, ok := driver["rules"].([]any)
	if !ok || len(rules) == 0 {
		t.Fatal("tool.driver.rules is empty: rule metadata is required")
	}
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		rm := r.(map[string]any)
		id, _ := rm["id"].(string)
		if id == "" {
			t.Fatalf("rule %d has no id: %v", i, r)
		}
		sd, ok := rm["shortDescription"].(map[string]any)
		if !ok || sd["text"] == "" {
			t.Errorf("rule %s has no shortDescription.text", id)
		}
		ruleIDs[i] = id
	}
	results, ok := run["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("results = %v, want 2", run["results"])
	}
	for _, r := range results {
		rm := r.(map[string]any)
		ruleID, _ := rm["ruleId"].(string)
		idx := int(rm["ruleIndex"].(float64))
		if idx < 0 || idx >= len(ruleIDs) || ruleIDs[idx] != ruleID {
			t.Errorf("ruleIndex %d does not point at ruleId %q in the rules array", idx, ruleID)
		}
		if rm["level"] != "error" {
			t.Errorf("result level = %v, want error", rm["level"])
		}
		msg, ok := rm["message"].(map[string]any)
		if !ok || msg["text"] == "" {
			t.Error("result has no message.text")
		}
		locs, ok := rm["locations"].([]any)
		if !ok || len(locs) == 0 {
			t.Fatal("result has no locations")
		}
		phys := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		art := phys["artifactLocation"].(map[string]any)
		if art["uri"] == "" {
			t.Error("physicalLocation.artifactLocation.uri is empty")
		}
		region := phys["region"].(map[string]any)
		if region["startLine"].(float64) < 1 {
			t.Error("region.startLine must be 1-based")
		}
	}
}
