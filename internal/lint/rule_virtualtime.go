package lint

import (
	"go/ast"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "virtual-time",
		Doc: "simulator packages must not read the wall clock (time.Now, " +
			"time.Since, timers): virtual time comes from the DES engine, and a " +
			"wall-clock read in a simulator path couples results to host speed, " +
			"breaking determinism and reproducibility",
		Match: isSimulatorPackage,
		Run:   runVirtualTime,
	})
}

// hostSidePackages are the internal packages that legitimately measure host
// wall time: the HTTP service, load generation, metrics export, experiment
// timing, benchmarking, reporting, the parallel sweep executor, and the
// analysis framework itself. Everything else under internal/ is simulator
// territory where time is virtual.
var hostSidePackages = map[string]bool{
	"internal/server":      true,
	"internal/loadgen":     true,
	"internal/metrics":     true,
	"internal/experiments": true,
	"internal/bench":       true,
	"internal/report":      true,
	"internal/sweep":       true,
	"internal/lint":        true,
}

func isSimulatorPackage(rel string) bool {
	if !strings.HasPrefix(rel, "internal/") {
		return false
	}
	top := rel
	if i := strings.Index(rel[len("internal/"):], "/"); i >= 0 {
		top = rel[:len("internal/")+i]
	}
	return !hostSidePackages[top]
}

// wallClockFuncs are the time package entry points that read or track the
// host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runVirtualTime(p *Pass) {
	info := p.TypesInfo()
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			if obj := info.Uses[sel.Sel]; obj != nil {
				if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
			} else if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "time" {
				return true
			}
			p.Reportf(call.Pos(),
				"time.%s reads the wall clock in a simulator package; virtual time comes from the DES engine (des.Time)",
				sel.Sel.Name)
			return true
		})
	}
}
