package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func init() {
	Register(&Analyzer{
		Name: "lock-pairing",
		Doc: "a function that calls X.Lock() (or X.TryLock()) must also contain " +
			"an X.Unlock() somewhere in its body, and vice versa; presence-based, " +
			"not count-based, so multi-exit functions pass while a leaked lock " +
			"fails. Function literals are separate scopes, except literals " +
			"registered as deferred cleanups (t.Cleanup, sync.OnceFunc), which " +
			"pair with the function that registers them",
		Run: runLockPairing,
	})
}

// cleanupRegistrars are callees whose function-literal argument runs as a
// delayed extension of the registering function: an Unlock inside them pairs
// with the enclosing function's Lock. Method matches are by name (t.Cleanup
// on *testing.T or any test helper); sync.OnceFunc/OnceValue are matched as
// package functions.
func isCleanupRegistrar(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Cleanup" {
			return true
		}
		if obj := info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return obj.Name() == "OnceFunc" || obj.Name() == "OnceValue" || obj.Name() == "OnceValues"
		}
		// Unresolved sync.OnceFunc still matches syntactically.
		if id, ok := fun.X.(*ast.Ident); ok && id.Name == "sync" {
			name := fun.Sel.Name
			return name == "OnceFunc" || name == "OnceValue" || name == "OnceValues"
		}
	}
	return false
}

// lockUse records where one receiver's lock calls appear within a scope.
type lockUse struct {
	lock, unlock token.Pos // first occurrence, or token.NoPos
}

func runLockPairing(p *Pass) {
	info := p.TypesInfo()
	for _, file := range p.Files() {
		// Literals passed to cleanup registrars merge into the registering
		// function's scope.
		merged := map[*ast.FuncLit]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isCleanupRegistrar(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					merged[lit] = true
				}
			}
			return true
		})

		checkScope := func(body *ast.BlockStmt) {
			uses := map[string]*lockUse{}
			ast.Inspect(body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body && !merged[lit] {
					return false // separate scope
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if name != "Lock" && name != "TryLock" && name != "Unlock" {
					return true
				}
				key := types.ExprString(sel.X)
				u := uses[key]
				if u == nil {
					u = &lockUse{}
					uses[key] = u
				}
				if name == "Unlock" {
					if u.unlock == token.NoPos {
						u.unlock = call.Pos()
					}
				} else if u.lock == token.NoPos {
					u.lock = call.Pos()
				}
				return true
			})
			keys := make([]string, 0, len(uses))
			for k := range uses {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				u := uses[k]
				if u.lock != token.NoPos && u.unlock == token.NoPos {
					p.Reportf(u.lock, "%s.Lock() with no %s.Unlock() in the same function", k, k)
				}
				if u.unlock != token.NoPos && u.lock == token.NoPos {
					p.Reportf(u.unlock, "%s.Unlock() with no %s.Lock() in the same function", k, k)
				}
			}
		}
		funcScopes(file, func(body *ast.BlockStmt, _ *ast.FuncDecl, lit *ast.FuncLit) {
			if lit != nil && merged[lit] {
				return // checked as part of the registering function
			}
			checkScope(body)
		})
	}
}
