package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parsePkg builds a minimal *Package from source, without type-checking —
// enough for directive and Run-plumbing tests that use syntactic analyzers.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sup, derrs := collectSuppressions(fset, file)
	return &Package{
		RelDir:     "internal/x",
		ImportPath: "ccube/internal/x",
		ModulePath: "ccube",
		Fset:       fset,
		Files:      []*ast.File{file},
		Info: &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		},
		suppressions:    map[string]map[int]map[string]bool{"fixture.go": sup},
		directiveErrors: derrs,
	}
}

// reportAtLines returns an analyzer that reports one diagnostic per given
// line, under the given rule name.
func reportAtLines(rule string, lines ...int) *Analyzer {
	return &Analyzer{
		Name: rule,
		Doc:  "test analyzer",
		Run: func(p *Pass) {
			tf := p.Fset().File(p.Files()[0].Pos())
			for _, line := range lines {
				p.Reportf(tf.LineStart(line), "synthetic finding")
			}
		},
	}
}

func TestSuppressionCoversOwnAndNextLine(t *testing.T) {
	pkg := parsePkg(t, `package x

func f() {
	//lint:ignore test-rule the next line is fine
	_ = 1
	_ = 2
}
`)
	// Directive on line 4: lines 4 and 5 suppressed, line 6 not.
	res := Run([]*Package{pkg}, []*Analyzer{reportAtLines("test-rule", 4, 5, 6)})
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Pos.Line != 6 {
		t.Fatalf("diagnostics = %+v, want exactly one on line 6", res.Diagnostics)
	}
	if res.Suppressed != 2 {
		t.Fatalf("suppressed = %d, want 2", res.Suppressed)
	}
}

func TestSuppressionRuleListAndWildcard(t *testing.T) {
	pkg := parsePkg(t, `package x

func f() {
	_ = 1 //lint:ignore rule-a,rule-b both silenced here
	_ = 2 //lint:ignore * everything silenced here
}
`)
	res := Run([]*Package{pkg}, []*Analyzer{
		reportAtLines("rule-a", 4, 5),
		reportAtLines("rule-b", 4),
		reportAtLines("rule-c", 4, 5),
	})
	// Line 4: rule-a and rule-b suppressed by the list, rule-c survives.
	// Line 5: wildcard suppresses everything.
	if len(res.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %+v, want exactly one (rule-c line 4)", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Rule != "rule-c" || d.Pos.Line != 4 {
		t.Fatalf("surviving diagnostic = %+v, want rule-c on line 4", d)
	}
	if res.Suppressed != 4 {
		t.Fatalf("suppressed = %d, want 4", res.Suppressed)
	}
}

func TestMalformedDirectiveIsDiagnostic(t *testing.T) {
	pkg := parsePkg(t, `package x

func f() {
	_ = 1 //lint:ignore no-sleep
}
`)
	res := Run([]*Package{pkg}, []*Analyzer{})
	if len(res.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %+v, want exactly one lint-directive error", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Rule != "lint-directive" || !strings.Contains(d.Message, "reason is mandatory") {
		t.Fatalf("diagnostic = %+v, want lint-directive about the mandatory reason", d)
	}
}

func TestMatchFiltersPackages(t *testing.T) {
	pkg := parsePkg(t, `package x

func f() {
	_ = 1
}
`)
	ran := 0
	a := &Analyzer{
		Name:  "match-test",
		Doc:   "test analyzer",
		Match: func(rel string) bool { return rel == "internal/other" },
		Run:   func(p *Pass) { ran++ },
	}
	Run([]*Package{pkg}, []*Analyzer{a})
	if ran != 0 {
		t.Fatalf("analyzer ran %d times on a non-matching package, want 0", ran)
	}
	a.Match = func(rel string) bool { return rel == "internal/x" }
	Run([]*Package{pkg}, []*Analyzer{a})
	if ran != 1 {
		t.Fatalf("analyzer ran %d times on a matching package, want 1", ran)
	}
}

func TestRegistryHasAllRules(t *testing.T) {
	want := []string{
		"ctx-propagation", "des-hot-alloc", "goroutine-leak",
		"kernel-goroutine", "lock-pairing", "metrics-cardinality",
		"no-sleep", "repair-verify", "server-ctx", "synth-verify",
		"unchecked-engine-err", "virtual-time",
	}
	for _, name := range want {
		if Lookup(name) == nil {
			t.Errorf("rule %q is not registered", name)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d analyzers, want %d", got, len(want))
	}
}
