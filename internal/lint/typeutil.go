package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isWaitGroupType reports whether t (possibly behind a pointer) is
// sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// moduleLocal reports whether obj is declared in a package of the given
// module (as opposed to the standard library or nowhere).
func moduleLocal(obj types.Object, modulePath string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == modulePath || strings.HasPrefix(p, modulePath+"/")
}

// calleeObject resolves the function or method object a call invokes, or
// nil when the callee is dynamic (function value, unresolved, built-in).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Fn.
		return info.Uses[fun.Sel]
	}
	return nil
}

// funcReturnsErrorLast reports whether obj is a function whose final result
// is the error type.
func funcReturnsErrorLast(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// hasCtxVariant reports whether the callee has a sibling named
// <name>Ctx taking a context.Context first: a package-level function in the
// same package scope, or a method on the same receiver type.
func hasCtxVariant(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	want := fn.Name() + "Ctx"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	var variant types.Object
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want {
				variant = m
				break
			}
		}
	} else {
		variant = fn.Pkg().Scope().Lookup(want)
	}
	vfn, ok := variant.(*types.Func)
	if !ok {
		return false
	}
	vsig, ok := vfn.Type().(*types.Signature)
	if !ok || vsig.Params().Len() == 0 {
		return false
	}
	return isContextType(vsig.Params().At(0).Type())
}

// funcScopes walks every function body in the file — declared functions and
// function literals — calling fn with the enclosing callable's body. Each
// literal is visited once as its own scope.
func funcScopes(file *ast.File, fn func(body *ast.BlockStmt, decl *ast.FuncDecl, lit *ast.FuncLit)) {
	var outer *ast.FuncDecl
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncDecl:
			outer = node
			if node.Body != nil {
				fn(node.Body, node, nil)
			}
		case *ast.FuncLit:
			fn(node.Body, outer, node)
		}
		return true
	})
}

// ctxParamName returns the name of a context.Context parameter of the given
// function type, or "" when none exists.
func ctxParamName(info *types.Info, ft *ast.FuncType) string {
	if ft == nil || ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name
				}
			}
		}
	}
	return ""
}
