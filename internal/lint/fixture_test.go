package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// TestFixtures runs every registered analyzer over the fixture module in
// testdata/src and compares the surviving diagnostics against the inline
// `// want "regexp"` expectations, analysistest-style. Regexps match against
// "<rule>: <message>". Each of the twelve rules has at least one firing case
// here and one //lint:ignore-suppressed case (counted at the bottom).
func TestFixtures(t *testing.T) {
	loader, err := NewLoader("testdata/src")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 5 {
		t.Errorf("loaded %d fixture packages, want 5", len(pkgs))
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", p.ImportPath, te)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	res := Run(pkgs, nil)

	// Collect `// want "rx" ["rx" ...]` expectations, keyed by file:line.
	type want struct {
		key string
		rx  *regexp.Regexp
		hit bool
	}
	var wants []*want
	quoted := regexp.MustCompile(`"([^"]*)"`)
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := p.Fset.Position(c.Slash)
					for _, m := range quoted.FindAllStringSubmatch(text, -1) {
						wants = append(wants, &want{
							key: fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
							rx:  regexp.MustCompile(m[1]),
						})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no // want expectations found in testdata/src")
	}

	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		text := d.Rule + ": " + d.Message
		matched := false
		for _, w := range wants {
			if !w.hit && w.key == key && w.rx.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, text)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("expected diagnostic at %s matching %q, got none", w.key, w.rx)
		}
	}

	// One suppressed case per rule: twelve //lint:ignore directives, each
	// silencing exactly one diagnostic.
	if res.Suppressed != 12 {
		t.Errorf("suppressed = %d, want 12 (one silenced case per rule)", res.Suppressed)
	}
}
