package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// Format selects a reporter.
type Format string

const (
	FormatText  Format = "text"
	FormatJSON  Format = "json"
	FormatSARIF Format = "sarif"
)

// Write renders the result in the given format. The text reporter ends with
// a one-line summary when any diagnostics survived.
func Write(w io.Writer, res *Result, format Format) error {
	switch format {
	case FormatText, "":
		return writeText(w, res)
	case FormatJSON:
		return writeJSON(w, res)
	case FormatSARIF:
		return writeSARIF(w, res)
	default:
		return fmt.Errorf("lint: unknown format %q (want text, json, or sarif)", format)
	}
}

func writeText(w io.Writer, res *Result) error {
	for _, d := range res.Diagnostics {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	if n := len(res.Diagnostics); n > 0 {
		_, err := fmt.Fprintf(w, "ccube-lint: %d issues (%d suppressed)\n", n, res.Suppressed)
		return err
	}
	return nil
}

// jsonDiagnostic is the stable machine-readable shape of one finding.
type jsonDiagnostic struct {
	Rule     string `json:"rule"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Fix      string `json:"suggested_fix,omitempty"`
	FixText  string `json:"suggested_fix_text,omitempty"`
	Category string `json:"category,omitempty"`
}

type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Suppressed  int              `json:"suppressed"`
	Packages    int              `json:"packages"`
	Files       int              `json:"files"`
}

func writeJSON(w io.Writer, res *Result) error {
	rep := jsonReport{
		Diagnostics: make([]jsonDiagnostic, 0, len(res.Diagnostics)),
		Suppressed:  res.Suppressed,
		Packages:    res.NumPackages,
		Files:       res.NumFiles,
	}
	for _, d := range res.Diagnostics {
		jd := jsonDiagnostic{
			Rule: d.Rule, File: d.Pos.Filename, Line: d.Pos.Line,
			Column: d.Pos.Column, Message: d.Message, Category: d.Category,
		}
		if d.Fix != nil {
			jd.Fix, jd.FixText = d.Fix.Message, d.Fix.NewText
		}
		rep.Diagnostics = append(rep.Diagnostics, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// --- SARIF 2.1.0 -------------------------------------------------------------

// The SARIF types cover the subset of the 2.1.0 schema CI consumers
// (GitHub code scanning and friends) require: version, $schema, one run
// with a tool driver carrying rule metadata, and results with physical
// locations.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

func writeSARIF(w io.Writer, res *Result) error {
	// Rule metadata covers every rule that fired plus every registered
	// analyzer, so a clean run still advertises what was checked.
	ruleIdx := map[string]int{}
	var rules []sarifRule
	addRule := func(name, doc string) {
		if _, ok := ruleIdx[name]; ok {
			return
		}
		ruleIdx[name] = len(rules)
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: firstLine(doc)}})
	}
	for _, a := range All() {
		addRule(a.Name, a.Doc)
	}
	for _, d := range res.Diagnostics {
		addRule(d.Rule, d.Message)
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	for i, r := range rules {
		ruleIdx[r.ID] = i
	}

	results := make([]sarifResult, 0, len(res.Diagnostics))
	for _, d := range res.Diagnostics {
		msg := d.Message
		if d.Fix != nil {
			msg += fmt.Sprintf(" (suggested fix: %s: `%s`)", d.Fix.Message, d.Fix.NewText)
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ruleIdx[d.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ccube-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	if s == "" {
		return "(no description)"
	}
	return s
}
