package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "ctx-propagation",
		Doc: "context-aware engine entry points are required repo-wide, not just " +
			"in internal/server: when a context.Context is in scope, a call to a " +
			"module function or method that has a <name>Ctx sibling taking a " +
			"context must use the sibling, so deadlines and cancellation reach " +
			"the DES run loop instead of dying in the caller's frame",
		Run: runCtxPropagation,
	})
}

func runCtxPropagation(p *Pass) {
	info := p.TypesInfo()

	// check walks one function body with the name of the context.Context
	// lexically in scope ("" when none). Nested literals inherit the
	// enclosing context unless they declare their own.
	var check func(body *ast.BlockStmt, ctx string)
	check = func(body *ast.BlockStmt, ctx string) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncLit:
				inner := ctxParamName(info, node.Type)
				if inner == "" {
					inner = ctx
				}
				check(node.Body, inner)
				return false
			case *ast.CallExpr:
				if ctx == "" {
					return true
				}
				obj := calleeObject(info, node)
				if obj == nil || !moduleLocal(obj, p.Pkg.ModulePath) || !hasCtxVariant(obj) {
					return true
				}
				callee := renderCallee(node)
				p.ReportWithFix(node.Pos(),
					callee+" discards the in-scope context "+ctx+"; call "+obj.Name()+"Ctx so cancellation reaches the engine",
					&SuggestedFix{
						Message: "propagate " + ctx,
						NewText: callee + "Ctx(" + ctx + ", ...)",
					})
			}
			return true
		})
	}

	for _, file := range p.Files() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			check(fn.Body, ctxParamName(info, fn.Type))
		}
	}
}

// renderCallee formats the call target for messages ("s.Execute", "Run").
func renderCallee(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun.X) + "." + fun.Sel.Name
	}
	return types.ExprString(call.Fun)
}
