package lint

import (
	"go/ast"
	"go/token"
)

func init() {
	Register(&Analyzer{
		Name: "repair-verify",
		Doc: "a function that calls RepairScheduleIncremental must also pass the " +
			"result through a verifier — VerifyPatch, CheckPatch, Verify, VerifyDeep " +
			"or Validate — in the same scope: an incrementally patched schedule that " +
			"never re-verifies must never execute",
		Run: runRepairVerify,
	})
}

// repairVerifiers are the module-local callees that discharge the
// verification obligation a RepairScheduleIncremental call creates. Both the
// delta verifiers (VerifyPatch, CheckPatch) and the full ones (Verify,
// VerifyDeep, Validate) count — full verification subsumes the delta.
var repairVerifiers = map[string]bool{
	"VerifyPatch": true, "CheckPatch": true,
	"Verify": true, "VerifyDeep": true, "Validate": true,
}

func runRepairVerify(p *Pass) {
	info := p.TypesInfo()
	for _, file := range p.Files() {
		// Presence-based within one function scope, like lock-pairing:
		// multi-exit functions pass as long as a verifier appears somewhere in
		// the body; function literals are separate scopes.
		funcScopes(file, func(body *ast.BlockStmt, _ *ast.FuncDecl, _ *ast.FuncLit) {
			repairPos := token.NoPos
			verified := false
			ast.Inspect(body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
					return false // separate scope
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObject(info, call)
				if obj == nil || !moduleLocal(obj, p.Pkg.ModulePath) {
					return true
				}
				switch {
				case obj.Name() == "RepairScheduleIncremental":
					if repairPos == token.NoPos {
						repairPos = call.Pos()
					}
				case repairVerifiers[obj.Name()]:
					verified = true
				}
				return true
			})
			if repairPos != token.NoPos && !verified {
				p.Reportf(repairPos, "RepairScheduleIncremental with no VerifyPatch/CheckPatch/Verify/Validate in the same function; an unverified patched schedule must never execute")
			}
		})
	}
}
