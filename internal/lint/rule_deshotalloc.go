package lint

import (
	"go/ast"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "des-hot-alloc",
		Doc: "the DES engine's hot functions (internal/des: event scheduling, the " +
			"batched drain, the graph run loop, resource grants) and the serve " +
			"JSON fast path (internal/server: pooled buffers, key hashing) must " +
			"stay allocation-free in steady state; every make or append there " +
			"needs a same-line comment containing \"amortized\" or \"prealloc\" " +
			"explaining why the growth is not per-operation",
		Match: func(rel string) bool {
			return rel == "internal/des" || strings.HasPrefix(rel, "internal/des/") ||
				rel == "internal/server" || strings.HasPrefix(rel, "internal/server/")
		},
		Run: runDesHotAlloc,
	})
}

// desHotFuncs are the internal/des functions on (or reachable from) the
// simulator's per-event / per-task fast path, where an allocation multiplies
// by the event count. The zero-alloc contract is enforced dynamically by the
// AllocsPerRun tests; this rule enforces the paper trail.
var desHotFuncs = map[string]bool{
	// des.go — event engine
	"At": true, "After": true, "Run": true, "RunUntil": true,
	"step": true, "recycle": true, "recycleQuiet": true, "push": true,
	"pop": true, "siftDown": true, "Reserve": true,
	// des.go — batched equal-timestamp drain
	"popRun": true, "fireBatch": true, "sortBySeq": true,
	"siftEntryDown": true, "flushBatchMetrics": true,
	// graph.go — task graph run loop
	"Add": true, "AddDeps": true, "RunErr": true, "buildAdjacency": true,
	"dependents": true, "readyPush": true, "readyPop": true,
	"Reset": true, "ReserveEdges": true,
	// cancel.go / graph.go — context-checkpointed run loops; the
	// cancellation checkpoint must stay allocation-free too
	"runErr": true, "RunCtx": true, "RunCtxErr": true,
	// resource.go — per-grant path
	"reserve": true, "Prealloc": true,
	// internal/server — JSON fast path buffer pool and key hashing
	"getBuf": true, "putBuf": true, "encodeBody": true,
	"canonicalKey": true, "writeAPIError": true,
}

func runDesHotAlloc(p *Pass) {
	fset := p.Fset()
	for _, file := range p.Files() {
		annotated := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.ToLower(c.Text)
				if strings.Contains(text, "amortized") || strings.Contains(text, "prealloc") {
					annotated[fset.Position(c.Slash).Line] = true
				}
			}
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !desHotFuncs[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || (id.Name != "make" && id.Name != "append") {
					return true
				}
				if pos := fset.Position(call.Pos()); !annotated[pos.Line] {
					p.Reportf(call.Pos(),
						`%s in DES hot function %s without an "amortized"/"prealloc" same-line comment; the engine's steady state must not allocate`,
						id.Name, fn.Name.Name)
				}
				return true
			})
		}
	}
}
