package lint

import (
	"testing"
	"time"
)

// runRepo lints the real module from a cold loader, returning the result.
func runRepo(tb testing.TB) *Result {
	tb.Helper()
	loader, err := NewLoader("../..")
	if err != nil {
		tb.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		tb.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			tb.Fatalf("%s: type error: %v", p.ImportPath, te)
		}
	}
	return Run(pkgs, nil)
}

// TestRepoLintsCleanAndFast is the acceptance gate for the framework: the
// repo itself must lint clean (violations are fixed, not accumulated), and a
// full cold run — parse, type-check, all ten analyzers over every package —
// must finish well under the 5 s budget.
func TestRepoLintsCleanAndFast(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint in -short mode")
	}
	start := time.Now()
	res := runRepo(t)
	elapsed := time.Since(start)
	for _, d := range res.Diagnostics {
		t.Errorf("repo is not lint-clean: %s", d)
	}
	if res.NumPackages < 20 {
		t.Errorf("loaded only %d packages; the walk missed most of the module", res.NumPackages)
	}
	if elapsed > 5*time.Second {
		t.Errorf("full lint took %v, want < 5s", elapsed)
	}
}

// BenchmarkLintModule measures a full cold lint of the module: shared
// single-parse/single-type-check across all ten analyzers.
func BenchmarkLintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runRepo(b)
		if len(res.Diagnostics) != 0 {
			b.Fatalf("repo not lint-clean: %d diagnostics", len(res.Diagnostics))
		}
	}
}
