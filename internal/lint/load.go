package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package shared by every analyzer.
// Parsing and type-checking happen exactly once per package per run; the
// previous ccube-lint re-parsed every file for every rule, which is the
// quadratic cost the Loader exists to remove.
type Package struct {
	// RelDir is the slash-separated package directory relative to the
	// module root, e.g. "internal/des" or "cmd/ccube-sim"; "." for the root.
	RelDir string
	// ImportPath is the module-qualified import path ("ccube/internal/des").
	ImportPath string
	// ModulePath is the owning module's path ("ccube"), for rules that need
	// to distinguish module-local objects from imported ones.
	ModulePath string

	Fset  *token.FileSet
	Files []*ast.File // non-test files, in filename order

	Types *types.Package // nil only if type-checking failed outright
	Info  *types.Info

	// TypeErrors collects type-check problems. Typed analyzers degrade
	// gracefully (unresolved objects just don't match), but the driver
	// surfaces these so a broken tree can't silently lint clean.
	TypeErrors []error

	suppressions    map[string]map[int]map[string]bool // filename -> line -> rules
	directiveErrors []Diagnostic
}

// Loader loads and type-checks packages beneath one module root, caching by
// import path so shared dependencies (internal/des under everything) are
// checked once per run. It implements types.Importer for intra-module
// imports and delegates the standard library to the compiler's export data.
type Loader struct {
	ModuleRoot string // absolute path of the directory containing go.mod
	ModulePath string // module path from go.mod, e.g. "ccube"

	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*Package // by import path
	loading map[string]bool     // import cycle guard
}

// NewLoader returns a loader rooted at the given module directory. The
// module path is read from go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		std:        importer.Default(),
		cache:      map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file without depending
// on golang.org/x/mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

// Fset returns the shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer: module-local paths are loaded from
// source (recursively, through the cache); everything else — the standard
// library — comes from compiler export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		if rel == "" {
			rel = "."
		}
		pkg, err := l.loadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: package %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load resolves the mixed argument forms the old ccube-lint accepted —
// "./...", directories, individual .go files — into type-checked packages.
// With no arguments it loads the whole module.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, arg := range patterns {
		if root, ok := strings.CutSuffix(arg, "..."); ok {
			root = filepath.Clean(strings.TrimSuffix(root, "/"))
			if root == "" || root == "." {
				root = l.ModuleRoot
			} else if !filepath.IsAbs(root) {
				root = filepath.Join(l.ModuleRoot, root)
			}
			dirs, err := goDirsUnder(root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				dirSet[d] = true
			}
			continue
		}
		if !filepath.IsAbs(arg) {
			arg = filepath.Join(l.ModuleRoot, arg)
		}
		fi, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if fi.IsDir() {
			if hasGoFiles(arg) {
				dirSet[filepath.Clean(arg)] = true
			}
			continue
		}
		dirSet[filepath.Dir(arg)] = true
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, d := range dirs {
		pkg, err := l.loadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// skipDirs are directory names never descended into.
var skipDirs = map[string]bool{
	".git": true, "testdata": true, "vendor": true,
	".github": true, "node_modules": true, ".claude": true,
}

// goDirsUnder walks root collecting every directory containing at least one
// non-test .go file.
func goDirsUnder(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirs = append(dirs, path)
			}
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in one directory, through the
// cache. Test files (_test.go) are exempt from all rules and excluded from
// the load.
func (l *Loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	importPath := l.ModulePath
	if rel != "." {
		importPath = l.ModulePath + "/" + rel
	}
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		filenames = append(filenames, filepath.Join(dir, name))
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, nil
	}

	pkg := &Package{
		RelDir:       rel,
		ImportPath:   importPath,
		ModulePath:   l.ModulePath,
		Fset:         l.fset,
		suppressions: map[string]map[int]map[string]bool{},
	}
	for _, fn := range filenames {
		file, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, file)
		sup, derrs := collectSuppressions(l.fset, file)
		pkg.suppressions[fn] = sup
		pkg.directiveErrors = append(pkg.directiveErrors, derrs...)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns the package even when errors were reported; typed
	// analyzers work off whatever resolved.
	tpkg, _ := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg

	l.cache[importPath] = pkg
	return pkg, nil
}
