package lint

import (
	"go/ast"
)

func init() {
	Register(&Analyzer{
		Name: "goroutine-leak",
		Doc: "a `go` statement needs a join path visible in the same declared " +
			"function: a sync.WaitGroup Wait/Done, a channel send/receive/close/" +
			"range/select, or a ctx.Done() subscription. A goroutine with no " +
			"join evidence is fire-and-forget — it outlives its spawner, hides " +
			"panics, and leaks under load",
		Run: runGoroutineLeak,
	})
}

func runGoroutineLeak(p *Pass) {
	info := p.TypesInfo()
	for _, file := range p.Files() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var goStmts []*ast.GoStmt
			joined := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.GoStmt:
					goStmts = append(goStmts, node)
				case *ast.SendStmt:
					joined = true
				case *ast.UnaryExpr:
					if node.Op.String() == "<-" {
						joined = true
					}
				case *ast.SelectStmt:
					joined = true
				case *ast.RangeStmt:
					if tv, ok := info.Types[node.X]; ok && isChanType(tv.Type) {
						joined = true
					}
				case *ast.CallExpr:
					if isJoinCall(p, node) {
						joined = true
					}
				}
				return true
			})
			if joined {
				continue
			}
			for _, g := range goStmts {
				p.Reportf(g.Pos(),
					"goroutine with no join path in %s: no WaitGroup Wait/Done, channel operation, or ctx.Done() in the same function",
					fn.Name.Name)
			}
		}
	}
}

// isJoinCall recognizes calls that tie a goroutine's lifetime to its
// spawner: WaitGroup Wait/Done, close(ch), and ctx.Done().
func isJoinCall(p *Pass, call *ast.CallExpr) bool {
	info := p.TypesInfo()
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Wait", "Done":
		if tv, ok := info.Types[sel.X]; ok {
			if isWaitGroupType(tv.Type) || isContextType(tv.Type) {
				return true
			}
		}
		// Unresolved receivers: accept the conventional names so a
		// type-check hiccup degrades to the syntactic check rather than a
		// false positive.
		if info.Types[sel.X].Type == nil {
			return true
		}
	}
	return false
}
