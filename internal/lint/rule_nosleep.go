package lint

import (
	"go/ast"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "no-sleep",
		Doc: "simulator packages (everything under internal/) must not call " +
			"time.Sleep: simulated time advances through the DES engine, and a " +
			"wall-clock sleep in a kernel or scheduler hides ordering bugs " +
			"instead of failing",
		Match: func(rel string) bool { return strings.HasPrefix(rel, "internal/") },
		Run:   runNoSleep,
	})
}

func runNoSleep(p *Pass) {
	info := p.TypesInfo()
	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			// Typed match when resolution succeeded; fall back to the
			// syntactic `time.Sleep` shape so a type-check hiccup cannot
			// silence the rule.
			if obj := info.Uses[sel.Sel]; obj != nil {
				if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
			} else if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "time" {
				return true
			}
			p.Reportf(call.Pos(), "time.Sleep in a simulator package; advance time through the DES engine")
			return true
		})
	}
}
