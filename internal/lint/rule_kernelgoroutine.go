package lint

import (
	"go/ast"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "kernel-goroutine",
		Doc: "internal/gpusim models persistent GPU kernels as goroutines; every " +
			"`go` statement there must carry a same-line comment containing " +
			"\"kernel\" naming which kernel it models, so stray concurrency " +
			"can't hide among them",
		Match: func(rel string) bool { return rel == "internal/gpusim" || strings.HasPrefix(rel, "internal/gpusim/") },
		Run:   runKernelGoroutine,
	})
}

func runKernelGoroutine(p *Pass) {
	fset := p.Fset()
	for _, file := range p.Files() {
		kernelLines := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.Contains(strings.ToLower(c.Text), "kernel") {
					kernelLines[fset.Position(c.Slash).Line] = true
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !kernelLines[fset.Position(g.Pos()).Line] {
				p.Reportf(g.Pos(), `goroutine in internal/gpusim without a same-line "... kernel" comment; only kernel runners may spawn goroutines here`)
			}
			return true
		})
	}
}
