package lint

import (
	"go/ast"
)

func init() {
	Register(&Analyzer{
		Name: "unchecked-engine-err",
		Doc: "discarding the error from the engine's run/verify entry points " +
			"(RunCtx, ExecuteCtx, Verify, RepairSchedule, ...) fails the build: " +
			"these errors carry cancellation, fault, and verification outcomes " +
			"that callers must route, not drop",
		Run: runUncheckedEngineErr,
	})
}

// engineErrFuncs are the module functions/methods whose error result must
// never be discarded. They are matched by name against type-resolved,
// module-local callees whose last result is error.
var engineErrFuncs = map[string]bool{
	"RunCtx": true, "RunCtxErr": true, "RunErr": true,
	"ExecuteCtx": true, "ExecuteOnCtx": true, "ExecuteTracedCtx": true,
	"ExecuteCheckpointCtx": true, "ResumeOnCtx": true,
	"Verify": true, "VerifyDeep": true, "Validate": true,
	"RepairSchedule": true, "RepairScheduleIncremental": true, "VerifyPatch": true,
	"RunChurn": true,
}

func runUncheckedEngineErr(p *Pass) {
	info := p.TypesInfo()

	// guarded reports whether the call's error result is discarded by the
	// statement that contains it.
	flag := func(call *ast.CallExpr, how string) {
		obj := calleeObject(info, call)
		if obj == nil || !engineErrFuncs[obj.Name()] {
			return
		}
		if !moduleLocal(obj, p.Pkg.ModulePath) || !funcReturnsErrorLast(obj) {
			return
		}
		p.Reportf(call.Pos(), "%s from %s %s; the engine's error carries cancellation/fault/verification state and must be handled",
			"error", renderCallee(call), how)
	}

	for _, file := range p.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					flag(call, "is discarded (call used as a statement)")
				}
			case *ast.GoStmt:
				flag(stmt.Call, "is discarded (goroutine result vanishes)")
			case *ast.DeferStmt:
				flag(stmt.Call, "is discarded (deferred without inspection)")
			case *ast.AssignStmt:
				// x, _ := f()  /  _ = f(): the error position must not be
				// blank.
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok || len(stmt.Lhs) == 0 {
					return true
				}
				last, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident)
				if ok && last.Name == "_" {
					flag(call, "is assigned to the blank identifier")
				}
			}
			return true
		})
	}
}
