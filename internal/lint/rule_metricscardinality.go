package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "metrics-cardinality",
		Doc: "label values passed to CounterVec.With / GaugeVec.With must be " +
			"compile-time constants or values of bounded provenance (a defined " +
			"module type, a method on one, or a local derived only from those) — " +
			"never request-derived strings, which would grow a metric family " +
			"without bound and blow up every scrape",
		Run: runMetricsCardinality,
	})
}

// metricsVecPath is the package whose labeled families the rule guards.
const metricsVecPath = "ccube/internal/metrics"

// isVecWith reports whether the call is (CounterVec).With or (GaugeVec).With
// from the metrics package.
func isVecWith(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "With" || len(call.Args) != 1 {
		return false
	}
	selection, ok := p.TypesInfo().Selections[sel]
	if !ok {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != metricsVecPath {
		return false
	}
	name := named.Obj().Name()
	return name == "CounterVec" || name == "GaugeVec"
}

func runMetricsCardinality(p *Pass) {
	info := p.TypesInfo()
	for _, file := range p.Files() {
		// Track the enclosing function body so local variables can be
		// traced to their assignments.
		var enclosing []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				if node.Body != nil {
					enclosing = append(enclosing, node.Body)
					ast.Inspect(node.Body, visit)
					enclosing = enclosing[:len(enclosing)-1]
				}
				return false
			case *ast.FuncLit:
				enclosing = append(enclosing, node.Body)
				ast.Inspect(node.Body, visit)
				enclosing = enclosing[:len(enclosing)-1]
				return false
			case *ast.CallExpr:
				if !isVecWith(p, node) {
					return true
				}
				arg := node.Args[0]
				var scope ast.Node = file
				if len(enclosing) > 0 {
					scope = enclosing[len(enclosing)-1]
				}
				if !boundedLabelExpr(p, info, scope, arg, 0) {
					p.Reportf(arg.Pos(),
						"metric label %s is not provably bounded: pass a constant, a defined module type (or a method on one), or a local derived only from those — request-derived strings explode series cardinality",
						types.ExprString(arg))
				}
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}

// boundedLabelExpr reports whether the expression's value is drawn from a
// bounded set, by the rule's definition of bounded provenance:
//
//   - compile-time constants (untyped or typed);
//   - expressions whose static type is a defined type declared in this
//     module (bounded sets are modeled as named types — train.Mode, a
//     server endpoint enum — so raw `string` never qualifies);
//   - calls to methods on module-defined types (ResourceName(), String(),
//     status() — the owning type bounds what they can produce);
//   - strconv.Itoa / fmt-free conversions of any of the above;
//   - a local variable assigned exactly once, from a bounded expression.
func boundedLabelExpr(p *Pass, info *types.Info, scope ast.Node, e ast.Expr, depth int) bool {
	if depth > 8 {
		return false
	}
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok {
		if tv.Value != nil {
			return true // constant
		}
		if isModuleDefinedType(tv.Type, p.Pkg.ModulePath) {
			return true
		}
	}
	switch node := e.(type) {
	case *ast.CallExpr:
		// Conversion: T(x) — bounded iff the operand is.
		if tv, ok := info.Types[node.Fun]; ok && tv.IsType() && len(node.Args) == 1 {
			return boundedLabelExpr(p, info, scope, node.Args[0], depth+1) ||
				isModuleDefinedType(info.Types[node.Args[0]].Type, p.Pkg.ModulePath)
		}
		obj := calleeObject(info, node)
		if fn, ok := obj.(*types.Func); ok {
			// strconv.Itoa of a bounded value.
			if fn.Pkg() != nil && fn.Pkg().Path() == "strconv" && fn.Name() == "Itoa" && len(node.Args) == 1 {
				return boundedLabelExpr(p, info, scope, node.Args[0], depth+1)
			}
			// A method on a module-defined type.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if isModuleDefinedType(sig.Recv().Type(), p.Pkg.ModulePath) {
					return true
				}
			}
		}
		return false
	case *ast.Ident:
		obj := info.Uses[node]
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if isModuleDefinedType(v.Type(), p.Pkg.ModulePath) {
			return true // named-type parameter or field: bounded by its type
		}
		rhs, n := soleAssignment(info, scope, v)
		if n != 1 || rhs == nil {
			return false
		}
		return boundedLabelExpr(p, info, scope, rhs, depth+1)
	}
	return false
}

// isModuleDefinedType reports whether t (behind pointers) is a named type
// declared in a module package.
func isModuleDefinedType(t types.Type, modulePath string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return moduleLocal(named.Obj(), modulePath)
}

// soleAssignment finds the unique expression assigned to v within scope.
// Returns the RHS and the number of assignments found (0, 1, or 2 for
// "more than one").
func soleAssignment(info *types.Info, scope ast.Node, v *types.Var) (ast.Expr, int) {
	var rhs ast.Expr
	count := 0
	record := func(e ast.Expr) {
		count++
		rhs = e
	}
	ast.Inspect(scope, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				// Multi-value unpacking: treat any mention of v as an
				// untraceable assignment.
				for _, l := range node.Lhs {
					if id, ok := l.(*ast.Ident); ok && (info.Defs[id] == v || info.Uses[id] == v) {
						count += 2
					}
				}
				return true
			}
			for i, l := range node.Lhs {
				if id, ok := l.(*ast.Ident); ok && (info.Defs[id] == v || info.Uses[id] == v) {
					record(node.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range node.Names {
				if info.Defs[name] == v {
					if i < len(node.Values) {
						record(node.Values[i])
					} else {
						count += 2 // declared without value, mutated later
					}
				}
			}
		}
		return true
	})
	return rhs, count
}
