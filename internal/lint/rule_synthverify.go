package lint

import (
	"go/ast"
	"go/token"
)

func init() {
	Register(&Analyzer{
		Name: "synth-verify",
		Doc: "a function that calls Assemble (the unverified synth-IR to schedule " +
			"constructor) must also pass the result through a verifier — Verify, " +
			"VerifyDeep, Validate, Check, CheckDeep or BuildWith — in the same " +
			"scope: an assembled schedule the checker never saw must never execute",
		Run: runSynthVerify,
	})
}

// synthVerifiers are the module-local callees that discharge the verification
// obligation an Assemble call creates. The shallow structural verifiers
// (Check, Validate and their loaded/patch variants) count alongside the deep
// ones, and BuildWith counts because the cache's miss path verifies every
// built schedule before stamping it.
var synthVerifiers = map[string]bool{
	"Verify": true, "VerifyDeep": true,
	"Validate": true, "ValidateLoaded": true,
	"Check": true, "CheckDeep": true, "CheckLoaded": true, "CheckPatch": true,
	"BuildWith": true,
}

func runSynthVerify(p *Pass) {
	info := p.TypesInfo()
	for _, file := range p.Files() {
		// Presence-based within one function scope, mirroring repair-verify:
		// multi-exit functions pass as long as a verifier appears somewhere in
		// the body; function literals are separate scopes.
		funcScopes(file, func(body *ast.BlockStmt, _ *ast.FuncDecl, _ *ast.FuncLit) {
			assemblePos := token.NoPos
			verified := false
			ast.Inspect(body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
					return false // separate scope
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObject(info, call)
				if obj == nil || !moduleLocal(obj, p.Pkg.ModulePath) {
					return true
				}
				switch {
				case obj.Name() == "Assemble":
					if assemblePos == token.NoPos {
						assemblePos = call.Pos()
					}
				case synthVerifiers[obj.Name()]:
					verified = true
				}
				return true
			})
			if assemblePos != token.NoPos && !verified {
				p.Reportf(assemblePos, "Assemble with no Verify/Validate/Check/BuildWith in the same function; an unverified assembled schedule must never execute")
			}
		})
	}
}
