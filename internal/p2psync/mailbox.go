package p2psync

// Mailbox is a bounded single-producer single-consumer queue of data chunks,
// built purely from the Fig. 11 semaphores. It models one direction of an
// inter-GPU channel: the sender's persistent kernel writes into the
// receiver's receive buffers and posts; the receiver waits, consumes, and
// frees the slot — exactly how the overlapped tree hands chunks between tree
// levels without host intervention.
type Mailbox struct {
	slots [][]float32
	fill  *Semaphore // counts occupied slots
	space *Semaphore // counts free slots
	head  int        // consumer cursor (single consumer)
	tail  int        // producer cursor (single producer)
}

// NewMailbox returns a mailbox with the given pipeline depth (number of
// receive buffers).
func NewMailbox(depth int) *Mailbox {
	if depth < 1 {
		panic("p2psync: mailbox depth < 1")
	}
	return &Mailbox{
		slots: make([][]float32, depth),
		fill:  NewSemaphore(0, int64(depth)),
		space: NewSemaphore(int64(depth), int64(depth)),
	}
}

// Send copies data into the next receive buffer, blocking (spinning) while
// all buffers are occupied.
func (m *Mailbox) Send(data []float32) { m.SendBounded(data, 0) }

// SendBounded is Send with a spin budget: it gives up and returns false
// after budget failed spin iterations without delivering (a budget <= 0
// spins forever). A false return means the receiver stalled — under fault
// injection, that its GPU or link died.
func (m *Mailbox) SendBounded(data []float32, budget int) bool {
	if !m.space.WaitBounded(budget) {
		return false
	}
	m.slots[m.tail] = append(m.slots[m.tail][:0], data...)
	m.tail = (m.tail + 1) % len(m.slots)
	m.fill.Post()
	return true
}

// Recv calls consume on the oldest chunk while the slot is still owned by
// the receiver, then frees the slot. It blocks (spinning) while the mailbox
// is empty. The slice passed to consume must not be retained — the slot is
// reused after Recv returns. Consuming in-slot is how the reduce kernels
// accumulate directly out of the receive buffer.
func (m *Mailbox) Recv(consume func(data []float32)) { m.RecvBounded(consume, 0) }

// RecvBounded is Recv with a spin budget (see SendBounded); consume is not
// called when the budget runs out.
func (m *Mailbox) RecvBounded(consume func(data []float32), budget int) bool {
	if !m.fill.WaitBounded(budget) {
		return false
	}
	consume(m.slots[m.head])
	m.head = (m.head + 1) % len(m.slots)
	m.space.Post()
	return true
}

// RecvCopy returns a freshly allocated copy of the oldest chunk.
func (m *Mailbox) RecvCopy() []float32 {
	var out []float32
	m.Recv(func(data []float32) {
		out = append([]float32(nil), data...)
	})
	return out
}

// Len reports the number of occupied slots.
func (m *Mailbox) Len() int { return int(m.fill.Count()) }
