package p2psync

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (lost updates)", counter)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock()
}

func TestSpinLockUnlockUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unlock of unheld lock did not panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

func TestSemaphorePostWait(t *testing.T) {
	s := NewSemaphore(0, 0)
	done := make(chan struct{})
	go func() {
		s.Wait()
		close(done)
	}()
	s.Post()
	<-done
	if c := s.Count(); c != 0 {
		t.Fatalf("count = %d, want 0", c)
	}
}

func TestSemaphoreCapacityBoundsProducer(t *testing.T) {
	s := NewSemaphore(0, 2)
	s.Post()
	s.Post()
	var posted atomic.Bool
	go func() {
		s.Post() // must block until a Wait frees a slot
		posted.Store(true)
	}()
	// The third post cannot complete while count == capacity.
	if c := s.Count(); c != 2 {
		t.Fatalf("count = %d, want 2", c)
	}
	s.Wait()
	for !posted.Load() {
	}
	if c := s.Count(); c != 2 {
		t.Fatalf("count after wait+post = %d, want 2", c)
	}
}

func TestSemaphoreCheckDoesNotConsume(t *testing.T) {
	s := NewSemaphore(0, 0)
	done := make(chan struct{})
	go func() {
		s.Check(3)
		close(done)
	}()
	s.Post()
	s.Post()
	select {
	case <-done:
		t.Fatal("Check(3) returned at count 2")
	default:
	}
	s.Post()
	<-done
	if c := s.Count(); c != 3 {
		t.Fatalf("count after Check = %d, want 3 (check must not consume)", c)
	}
}

func TestSemaphoreInitialExceedsCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSemaphore(3, 2) did not panic")
		}
	}()
	NewSemaphore(3, 2)
}

func TestSemaphoreManyProducersConsumers(t *testing.T) {
	s := NewSemaphore(0, 4)
	const total = 4000
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				s.Post()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				s.Wait()
				consumed.Add(1)
			}
		}()
	}
	wg.Wait()
	if consumed.Load() != total {
		t.Fatalf("consumed %d, want %d", consumed.Load(), total)
	}
	if c := s.Count(); c != 0 {
		t.Fatalf("final count = %d, want 0", c)
	}
}

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox(2)
	go func() {
		for i := 0; i < 100; i++ {
			m.Send([]float32{float32(i)})
		}
	}()
	for i := 0; i < 100; i++ {
		got := m.RecvCopy()
		if len(got) != 1 || got[0] != float32(i) {
			t.Fatalf("recv %d = %v", i, got)
		}
	}
}

func TestMailboxBoundedDepth(t *testing.T) {
	m := NewMailbox(1)
	m.Send([]float32{1})
	var sentSecond atomic.Bool
	go func() {
		m.Send([]float32{2})
		sentSecond.Store(true)
	}()
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1", m.Len())
	}
	got := m.RecvCopy()
	if got[0] != 1 {
		t.Fatalf("first recv = %v", got)
	}
	for !sentSecond.Load() {
	}
	if got := m.RecvCopy(); got[0] != 2 {
		t.Fatalf("second recv = %v", got)
	}
}

func TestMailboxRecvInSlotAccumulate(t *testing.T) {
	m := NewMailbox(4)
	sum := make([]float32, 3)
	go func() {
		for i := 1; i <= 5; i++ {
			m.Send([]float32{float32(i), float32(i * 10), float32(i * 100)})
		}
	}()
	for i := 0; i < 5; i++ {
		m.Recv(func(data []float32) {
			for j := range sum {
				sum[j] += data[j]
			}
		})
	}
	want := []float32{15, 150, 1500}
	for j := range want {
		if sum[j] != want[j] {
			t.Fatalf("sum = %v, want %v", sum, want)
		}
	}
}

func TestMailboxZeroDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMailbox(0) did not panic")
		}
	}()
	NewMailbox(0)
}
