package p2psync

import "testing"

func TestWaitBoundedStallsAndRecovers(t *testing.T) {
	s := NewSemaphore(0, 0)
	if s.WaitBounded(64) {
		t.Fatal("WaitBounded succeeded on an empty semaphore")
	}
	s.Post()
	if !s.WaitBounded(64) {
		t.Fatal("WaitBounded failed with a count available")
	}
	if s.Count() != 0 {
		t.Fatalf("count = %d after bounded wait, want 0", s.Count())
	}
}

func TestPostBoundedStallsAtCapacity(t *testing.T) {
	s := NewSemaphore(1, 1)
	if s.PostBounded(64) {
		t.Fatal("PostBounded succeeded at capacity")
	}
	s.Wait()
	if !s.PostBounded(64) {
		t.Fatal("PostBounded failed below capacity")
	}
}

func TestCheckBoundedStalls(t *testing.T) {
	s := NewSemaphore(1, 0)
	if s.CheckBounded(2, 64) {
		t.Fatal("CheckBounded(2) succeeded with count 1")
	}
	if !s.CheckBounded(1, 64) {
		t.Fatal("CheckBounded(1) failed with count 1")
	}
	if s.Count() != 1 {
		t.Fatalf("Check consumed the count: %d", s.Count())
	}
}

func TestMailboxBoundedStallAndRecovery(t *testing.T) {
	m := NewMailbox(1)
	// Empty mailbox: bounded Recv stalls, consume never runs.
	called := false
	if m.RecvBounded(func([]float32) { called = true }, 64) {
		t.Fatal("RecvBounded succeeded on an empty mailbox")
	}
	if called {
		t.Fatal("consume called on a stalled RecvBounded")
	}
	if !m.SendBounded([]float32{1, 2}, 64) {
		t.Fatal("SendBounded failed with a free slot")
	}
	// Full mailbox: bounded Send stalls.
	if m.SendBounded([]float32{3}, 64) {
		t.Fatal("SendBounded succeeded on a full mailbox")
	}
	var got []float32
	if !m.RecvBounded(func(d []float32) { got = append(got[:0], d...) }, 64) {
		t.Fatal("RecvBounded failed with a chunk available")
	}
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("received %v, want [1 2]", got)
	}
}
