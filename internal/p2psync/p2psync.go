// Package p2psync ports the paper's device-side synchronization primitives
// (Fig. 11) to Go. On the DGX-1 proof-of-concept, C-Cube runs as persistent
// CUDA kernels that must synchronize without host intervention: a spin lock
// built from atomic compare-and-swap plus memory fences, and semaphores
// (post / wait / check) built on top of it for managing receive buffers and
// the gradient queue.
//
// The Go ports keep the same structure — CAS spin loops and a count guarded
// by the lock — with runtime.Gosched standing in for the GPU's hardware
// thread scheduling. The gpusim package drives real goroutine "kernels"
// through these primitives, so their deadlock-freedom and ordering behavior
// is exercised under the race detector, which is the property the CUDA
// originals rely on.
package p2psync

import (
	"runtime"
	"sync/atomic"
)

// SpinLock is the lock/unlock pair of Fig. 11: acquisition spins on
// atomicCAS(lock, 0, 1); release is an atomic store (the atomicExch of the
// original). Go's atomics provide the fence semantics the CUDA code gets
// from __threadfence.
//
// The zero value is an unlocked lock.
type SpinLock struct {
	state atomic.Int32
}

// Lock spins until the lock is acquired.
func (l *SpinLock) Lock() {
	for !l.state.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

// TryLock acquires the lock if it is free and reports whether it did.
func (l *SpinLock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// Unlock releases the lock. Unlocking an unheld lock panics — it would mean
// two kernels believed they owned a receive buffer simultaneously.
func (l *SpinLock) Unlock() {
	if !l.state.CompareAndSwap(1, 0) {
		panic("p2psync: unlock of unlocked SpinLock")
	}
}

// Semaphore is the post/wait/check counter of Fig. 11, used to manage the
// receive buffers of the overlapped tree and the gradient queue's enqueue
// counter. The count is guarded by a SpinLock exactly as in the paper's
// pseudocode (no blocking OS primitives — persistent kernels cannot sleep).
type Semaphore struct {
	lock SpinLock
	cnt  int64

	// capacity bounds the count for producer flow control: Post spins while
	// cnt == capacity, modeling a bounded receive buffer. A capacity of 0
	// means unbounded (the gradient queue's enqueue semaphore, whose backing
	// store is the gradient buffer itself and needs no extra bound).
	capacity int64
}

// NewSemaphore returns a semaphore with the given initial count and
// capacity (0 = unbounded).
func NewSemaphore(initial, capacity int64) *Semaphore {
	if capacity > 0 && initial > capacity {
		panic("p2psync: initial count exceeds capacity")
	}
	return &Semaphore{cnt: initial, capacity: capacity}
}

// Post increments the count, spinning first while the count sits at
// capacity (Fig. 11's `while cnt==value`).
func (s *Semaphore) Post() { s.PostBounded(0) }

// PostBounded is Post with a spin budget: it gives up and returns false
// after budget failed spin iterations. A budget <= 0 means spin forever
// (always returns true). Bounded waits are the fault-injection escape hatch:
// a kernel whose peer died detects the stall instead of spinning eternally.
func (s *Semaphore) PostBounded(budget int) bool {
	s.lock.Lock()
	for s.capacity > 0 && s.cnt == s.capacity {
		s.lock.Unlock()
		mSemSpins.Inc()
		if budget > 0 {
			budget--
			if budget == 0 {
				return false
			}
		}
		runtime.Gosched()
		s.lock.Lock()
	}
	s.cnt++
	s.lock.Unlock()
	return true
}

// Wait decrements the count, spinning while it is zero (Fig. 11's
// `while cnt==0`).
func (s *Semaphore) Wait() { s.WaitBounded(0) }

// WaitBounded is Wait with a spin budget (see PostBounded).
func (s *Semaphore) WaitBounded(budget int) bool {
	s.lock.Lock()
	for s.cnt == 0 {
		s.lock.Unlock()
		mSemSpins.Inc()
		if budget > 0 {
			budget--
			if budget == 0 {
				return false
			}
		}
		runtime.Gosched()
		s.lock.Lock()
	}
	s.cnt--
	s.lock.Unlock()
	return true
}

// Check spins until the count reaches value without modifying it — the
// paper's addition for gradient queuing, where each layer checks that its
// chunks have all been enqueued before dequeuing (Fig. 11's `check`).
func (s *Semaphore) Check(value int64) { s.CheckBounded(value, 0) }

// CheckBounded is Check with a spin budget (see PostBounded).
func (s *Semaphore) CheckBounded(value int64, budget int) bool {
	s.lock.Lock()
	for s.cnt < value {
		s.lock.Unlock()
		mSemSpins.Inc()
		if budget > 0 {
			budget--
			if budget == 0 {
				return false
			}
		}
		runtime.Gosched()
		s.lock.Lock()
	}
	s.lock.Unlock()
	return true
}

// Count returns the current count (for tests and metrics).
func (s *Semaphore) Count() int64 {
	s.lock.Lock()
	c := s.cnt
	s.lock.Unlock()
	return c
}
