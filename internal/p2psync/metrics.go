package p2psync

import "ccube/internal/metrics"

// mSemSpins counts failed semaphore spin iterations (post/wait/check
// combined): the device-side busy-wait cost the paper's persistent kernels
// pay for host-free synchronization. One atomic check-and-add per failed
// spin, next to the Gosched the spin already performs.
var mSemSpins = metrics.Default.Counter("p2psync_semaphore_spins_total",
	"failed semaphore spin iterations across post/wait/check")
